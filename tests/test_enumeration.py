"""Tests for Algorithm 2 enumeration (repro.core.enumeration)."""

import pytest

from repro.core.enumeration import Enumerator, _greedy_fill, _rotations
from repro.core.mapping import Dim
from repro.core.parser import parse


@pytest.fixture
def eq1():
    return parse("abcd-aebf-dfce", 24)


@pytest.fixture
def enumerator(eq1, v100):
    return Enumerator(eq1, v100)


class TestGreedyFill:
    EXTENTS = {"a": 4, "b": 8, "c": 3}

    def test_reaches_target_with_partial_tile(self):
        entries, ok = _greedy_fill(["a", "b"], self.EXTENTS, 16)
        assert ok
        assert entries == (("a", 4), ("b", 4))

    def test_first_index_covers_target(self):
        entries, ok = _greedy_fill(["b"], self.EXTENTS, 8)
        assert ok
        assert entries == (("b", 8),)

    def test_first_index_exceeds_target(self):
        entries, ok = _greedy_fill(["b"], self.EXTENTS, 4)
        assert ok
        assert entries == (("b", 4),)

    def test_target_unreachable(self):
        entries, ok = _greedy_fill(["a", "c"], self.EXTENTS, 64)
        assert not ok
        assert entries == (("a", 4), ("c", 3))

    def test_prev_accumulator(self):
        entries, ok = _greedy_fill(["b"], self.EXTENTS, 16, prev=4)
        assert ok
        assert entries == (("b", 4),)

    def test_tile_never_exceeds_extent(self):
        entries, ok = _greedy_fill(["c"], self.EXTENTS, 16, prev=8)
        assert ok
        assert entries[0][1] <= 3


class TestRotations:
    def test_all_starts(self):
        assert list(_rotations(["x", "y", "z"])) == [
            ("x", "y", "z"), ("y", "z", "x"), ("z", "x", "y"),
        ]

    def test_empty(self):
        assert list(_rotations([])) == [()]


class TestPartials:
    def test_x_side_always_leads_with_output_fvi(self, enumerator, eq1):
        for partial in enumerator.enumerate_x_side():
            assert partial.tb[0][0] == eq1.c.fvi

    def test_x_side_uses_only_x_externals(self, enumerator, eq1):
        x_ext = set(eq1.externals_of(eq1.x_input))
        for partial in enumerator.enumerate_x_side():
            for name, _tile in partial.tb + partial.reg:
                assert name in x_ext

    def test_y_side_uses_only_y_externals(self, enumerator, eq1):
        y_ext = set(eq1.externals_of(eq1.y_input))
        for partial in enumerator.enumerate_y_side():
            for name, _tile in partial.tb + partial.reg:
                assert name in y_ext

    def test_tb_and_reg_disjoint(self, enumerator):
        for partial in enumerator.enumerate_x_side():
            tb_names = {n for n, _ in partial.tb}
            reg_names = {n for n, _ in partial.reg}
            assert not (tb_names & reg_names)

    def test_tbk_covers_only_internals(self, enumerator, eq1):
        internals = set(eq1.internal_indices)
        for entries in enumerator.enumerate_tb_k():
            for name, _tile in entries:
                assert name in internals

    def test_no_internals_yields_empty_partial(self, v100):
        outer = parse("ab-a-b", {"a": 64, "b": 64})
        e = Enumerator(outer, v100)
        assert e.enumerate_tb_k() == [()]

    def test_y_side_without_externals(self, v100):
        c = parse("a-ak-k", {"a": 128, "k": 64})
        e = Enumerator(c, v100)
        partials = e.enumerate_y_side()
        assert partials == [type(partials[0])((), ())]


class TestEnumerate:
    def test_produces_valid_configs(self, enumerator, eq1):
        result = enumerator.enumerate()
        assert result.configs
        for cfg in result.configs[:50]:
            cfg.validate_for(eq1)  # raises on violation

    def test_stats_add_up(self, enumerator):
        result = enumerator.enumerate()
        stats = result.stats
        total = (
            stats.hardware_pruned
            + stats.performance_pruned
            + stats.duplicates
            + stats.accepted
        )
        assert total == stats.raw_combinations

    def test_pruned_fraction_between_0_and_1(self, enumerator):
        stats = enumerator.enumerate().stats
        assert 0.0 <= stats.pruned_fraction <= 1.0

    def test_substantial_pruning_happens(self, enumerator):
        stats = enumerator.enumerate().stats
        assert stats.pruned_fraction > 0.25

    def test_no_duplicate_configs(self, enumerator):
        result = enumerator.enumerate()
        descriptions = [cfg.describe() for cfg in result.configs]
        assert len(descriptions) == len(set(descriptions))

    def test_contains_canonical_16x16_config(self, enumerator):
        """The classic 16x16 block with register tiling must be in the
        space (it is NWChem's fixed choice and the paper's Fig. 3)."""
        result = enumerator.enumerate()
        wanted = None
        for cfg in result.configs:
            if (
                cfg.tb_x_size == 16
                and cfg.tb_y_size == 16
                and cfg.reg_x_size >= 2
                and cfg.reg_y_size >= 2
            ):
                wanted = cfg
                break
        assert wanted is not None

    def test_internal_indices_always_on_tbk(self, enumerator, eq1):
        for cfg in enumerator.enumerate().configs[:100]:
            for idx in eq1.internal_indices:
                assert cfg.mapping_of(idx).dim is Dim.TB_K

    def test_max_configs_cap(self, eq1, v100):
        e = Enumerator(eq1, v100, max_configs=10)
        result = e.enumerate()
        assert result.stats.raw_combinations <= 11

    def test_tiny_problem_falls_back_to_full_extents(self, v100):
        tiny = parse("ab-ak-kb", {"a": 2, "b": 2, "k": 2})
        result = Enumerator(tiny, v100).enumerate()
        # Everything may be perf-pruned, but hardware-feasible configs
        # must exist for the generator's fallback.
        assert result.configs or result.feasible_rejects


class TestPaperSearchSpace:
    """Eq. 1 of the paper (Section IV): 4^4 * 2 * 6^5 = 3,981,312."""

    def test_eq1_matches_paper_figure(self, eq1):
        from repro.core.enumeration import paper_search_space

        assert paper_search_space(eq1) == 3_981_312

    def test_matmul_space(self):
        from repro.core.enumeration import paper_search_space

        # ab-ak-kb: 2 externals, 1 internal -> 4^2 * 2^0 * 6^2 = 576.
        assert paper_search_space(parse("ab-ak-kb", 32)) == 576
