"""Tests for the one-stop validation utility (repro.core.validate)."""

import pytest

from repro import Cogent, parse
from repro.core.validate import ALL_CHECKS, validate_kernel

from .conftest import requires_cc


@pytest.fixture(scope="module")
def small_kernel():
    c = parse("abcd-aebf-dfce",
              {"a": 6, "b": 5, "c": 4, "d": 6, "e": 3, "f": 4})
    return Cogent(arch="V100", top_k=2).generate(c)


class TestValidate:
    def test_plan_check(self, small_kernel):
        report = validate_kernel(small_kernel, ["plan"])
        assert report.passed
        assert report.results[0].name == "plan"

    def test_trace_check(self, small_kernel):
        report = validate_kernel(small_kernel, ["trace"])
        assert report.passed
        assert "transactions" in report.results[0].detail

    @requires_cc
    def test_all_checks(self, small_kernel):
        report = validate_kernel(small_kernel)
        assert report.passed
        assert [r.name for r in report.results] == list(ALL_CHECKS)

    def test_unknown_check_rejected(self, small_kernel):
        with pytest.raises(ValueError):
            validate_kernel(small_kernel, ["magic"])

    def test_summary_mentions_verdict(self, small_kernel):
        report = validate_kernel(small_kernel, ["plan"])
        assert "all checks passed" in report.summary()

    @requires_cc
    def test_split_kernel_validates(self):
        gen = Cogent(arch="V100", split_factors=(4,))
        kernel = gen.generate(
            parse("abc-adc-bd", {"a": 8, "b": 12, "c": 6, "d": 8})
        )
        report = validate_kernel(kernel)
        assert report.passed

    @requires_cc
    def test_merged_kernel_validates(self):
        gen = Cogent(arch="V100", allow_merge=True)
        kernel = gen.generate(
            parse("abcd-abef-efcd",
                  {"a": 4, "b": 3, "c": 4, "d": 3, "e": 2, "f": 3})
        )
        assert kernel.merge_specs
        report = validate_kernel(kernel)
        assert report.passed

    def test_single_precision_tolerances(self):
        gen = Cogent(arch="V100", dtype_bytes=4, top_k=1)
        kernel = gen.generate(parse("ab-ak-kb", 8))
        report = validate_kernel(kernel, ["plan"])
        assert report.passed
