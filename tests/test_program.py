"""Tests for dedup-first workload compilation (repro.core.program)."""

import json

import numpy as np
import pytest

from repro import api
from repro.core import program as program_mod
from repro.core.generator import Cogent
from repro.core.parser import parse
from repro.core.program import (
    CompilationSession,
    KernelStore,
    canonical_form,
    code_version_stamp,
    kernel_from_store_payload,
    kernel_to_store_payload,
    workload_key,
)


@pytest.fixture(scope="module")
def gen():
    return Cogent(arch="V100", top_k=4)


def _operands(contraction, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal(
        [contraction.extent(i) for i in contraction.a.indices]
    )
    b = rng.standard_normal(
        [contraction.extent(i) for i in contraction.b.indices]
    )
    return a, b


class TestCanonicalForm:
    def test_isomorphs_share_canonical_form(self):
        canon1, _ = canonical_form(parse("ab-ak-kb", 32))
        canon2, _ = canonical_form(parse("cd-cm-md", 32))
        assert canon1 == canon2

    def test_rename_maps_to_canonical_names(self):
        canon, rename = canonical_form(parse("ab-ak-kb", 32))
        assert canon.c.indices == ("i0", "i1")
        assert set(rename) == {"a", "b", "k"}
        assert rename["a"] == "i0"

    def test_structure_difference_detected(self):
        # Same index multiset, different positions.
        canon1, _ = canonical_form(parse("ab-ak-kb", 32))
        canon2, _ = canonical_form(parse("ab-ka-kb", 32))
        assert canon1 != canon2


class TestWorkloadKey:
    def test_isomorphs_share_key(self, gen):
        k1 = workload_key(parse("ab-ak-kb", 32), gen.arch, 8)
        k2 = workload_key(parse("xy-xz-zy", 32), gen.arch, 8)
        assert k1 == k2

    def test_exact_extents_not_bucketed(self, gen):
        # cache_key buckets 31 and 32 together; workload keys must not.
        k1 = workload_key(parse("ab-ak-kb", 32), gen.arch, 8)
        k2 = workload_key(parse("ab-ak-kb", 31), gen.arch, 8)
        assert k1 != k2

    def test_dtype_and_signature_separate_keys(self, gen):
        c = parse("ab-ak-kb", 32)
        assert workload_key(c, gen.arch, 8) != workload_key(c, gen.arch, 4)
        assert workload_key(c, gen.arch, 8, "top_k=4") != workload_key(
            c, gen.arch, 8, "top_k=64"
        )

    def test_stamp_separates_keys(self, gen):
        c = parse("ab-ak-kb", 32)
        assert workload_key(c, gen.arch, 8, stamp="aaaa") != workload_key(
            c, gen.arch, 8, stamp="bbbb"
        )

    def test_code_version_stamp_stable(self):
        assert code_version_stamp() == code_version_stamp()
        assert len(code_version_stamp()) == 16


class TestSearchSignature:
    def test_knobs_fold_into_signature(self):
        base = Cogent(arch="V100").search_signature()
        assert Cogent(arch="V100", top_k=4).search_signature() != base
        assert Cogent(arch="V100", allow_split=False).search_signature() \
            != base

    def test_workers_and_engine_do_not(self):
        # Parallel and object-engine searches are bit-identical, so
        # they must share equivalence classes.
        a = Cogent(arch="V100")
        b = Cogent(arch="V100", engine="object")
        b.workers = 4
        assert a.search_signature() == b.search_signature()


class TestCompilationSession:
    def test_dedup_classes_and_bit_identity(self, gen):
        exprs = ["ab-ak-kb", "cd-cm-md", "ab-ak-kb", "abc-abk-kc"]
        sizes = [32, 32, 32, 24]
        items = [parse(e, s) for e, s in zip(exprs, sizes)]
        program = CompilationSession(gen).compile(items)
        assert program.stats.contractions == 4
        assert program.stats.classes == 2
        assert program.stats.dedup_hits == 2
        assert program.stats.searches == 2
        assert program.classes[0].members == (0, 1, 2)
        for contraction, kernel in zip(items, program.kernels):
            independent = gen.generate(contraction)
            assert kernel.config.describe() \
                == independent.config.describe()
            assert kernel.cost == independent.cost

    def test_fanned_out_kernels_execute_correctly(self, gen):
        items = [parse("ab-ak-kb", 24), parse("xy-xz-zy", 24)]
        program = CompilationSession(gen).compile(items)
        for contraction, kernel in zip(items, program.kernels):
            a, b = _operands(contraction)
            assert np.allclose(kernel.execute(a, b), a @ b)

    def test_split_winner_fans_out_bit_identically(self, gen):
        # ab-ak-kb at 96 selects a split rewrite; the replay must
        # retarget onto the renamed member.
        items = [parse("ab-ak-kb", 96), parse("xy-xz-zy", 96)]
        program = CompilationSession(gen).compile(items)
        rep, member = program.kernels
        assert rep.split_specs
        independent = gen.generate(items[1])
        assert member.config.describe() == independent.config.describe()
        assert member.cost == independent.cost
        a, b = _operands(items[1])
        assert np.allclose(member.execute(a, b), a @ b)

    def test_session_memory_spans_batches(self, gen):
        session = CompilationSession(gen)
        session.compile([parse("ab-ak-kb", 32)])
        program = session.compile([parse("pq-pr-rq", 32)])
        assert program.stats.searches == 0
        assert program.classes[0].source == "memory"

    def test_kernel_names_assigned(self, gen):
        program = CompilationSession(gen).compile(
            [parse("ab-ak-kb", 24), parse("xy-xz-zy", 24)],
            kernel_names=["first", "second"],
        )
        assert [k.kernel_name for k in program.kernels] \
            == ["first", "second"]

    def test_kernel_names_length_mismatch_rejected(self, gen):
        with pytest.raises(ValueError):
            CompilationSession(gen).compile(
                [parse("ab-ak-kb", 24)], kernel_names=["a", "b"]
            )

    def test_obs_counters_recorded(self, gen):
        from repro import obs

        with obs.tracing() as session:
            CompilationSession(gen).compile(
                [parse("ab-ak-kb", 24), parse("xy-xz-zy", 24)]
            )
        counters = session.payload()["metrics"]["counters"]
        assert counters["program.classes"] == 1
        assert counters["program.dedup_hits"] == 1
        assert counters["program.searches"] == 1


class TestKernelStore:
    def test_warm_run_zero_searches(self, gen, tmp_path):
        items = [parse("ab-ak-kb", 96), parse("abc-abk-kc", 24)]
        cold = CompilationSession(gen, store=tmp_path).compile(items)
        assert cold.stats.searches == 2
        assert cold.stats.store_misses == 2
        warm = CompilationSession(
            Cogent(arch="V100", top_k=4), store=tmp_path
        ).compile(items)
        assert warm.stats.searches == 0
        assert warm.stats.store_hits == 2
        for k_cold, k_warm in zip(cold.kernels, warm.kernels):
            assert k_cold.config.describe() == k_warm.config.describe()
            assert k_cold.cost == k_warm.cost
            assert k_warm.selection_mode.endswith("+store")

    def test_store_hits_isomorphic_respelling(self, gen, tmp_path):
        # Payloads are canonical, so a differently spelled batch hits.
        CompilationSession(gen, store=tmp_path).compile(
            [parse("ab-ak-kb", 96)]
        )
        warm = CompilationSession(
            Cogent(arch="V100", top_k=4), store=tmp_path
        ).compile([parse("uv-uw-wv", 96)])
        assert warm.stats.searches == 0
        independent = gen.generate(parse("uv-uw-wv", 96))
        assert warm.kernels[0].config.describe() \
            == independent.config.describe()
        assert warm.kernels[0].cost == independent.cost

    def test_store_version_guard(self, gen, tmp_path):
        session = CompilationSession(gen, store=tmp_path)
        session.compile([parse("ab-ak-kb", 24)])
        store = session.store
        key = session.class_key(parse("ab-ak-kb", 24))
        payload = json.loads((store.directory / f"{key}.json").read_text())
        payload["store_version"] = 0
        (store.directory / f"{key}.json").write_text(
            json.dumps(payload)
        )
        assert store.lookup(key) is None

    def test_code_stamp_invalidates_entries(self, gen, tmp_path,
                                            monkeypatch):
        CompilationSession(gen, store=tmp_path).compile(
            [parse("ab-ak-kb", 24)]
        )
        monkeypatch.setattr(program_mod, "_CODE_STAMP", "f" * 16)
        stale = CompilationSession(
            Cogent(arch="V100", top_k=4), store=tmp_path
        ).compile([parse("ab-ak-kb", 24)])
        assert stale.stats.searches == 1
        assert stale.stats.store_hits == 0

    def test_payload_roundtrip(self, gen):
        kernel = gen.generate(parse("ab-ak-kb", 96))
        payload = kernel_to_store_payload(kernel)
        rebuilt = kernel_from_store_payload(payload, gen)
        canon, rename = canonical_form(parse("ab-ak-kb", 96))
        assert rebuilt.original_contraction == canon
        assert rebuilt.cost == kernel.cost
        assert len(payload["split_specs"]) == len(kernel.split_specs)

    def test_atomic_writes_leave_no_temp_files(self, gen, tmp_path):
        session = CompilationSession(gen, store=tmp_path)
        session.compile([parse("ab-ak-kb", 24)])
        assert not list(tmp_path.glob("*.tmp"))
        assert len(session.store) == 1


class TestApiCompileMany:
    def test_compile_many_with_store(self, tmp_path):
        opts = api.Options(top_k=4, store_dir=tmp_path / "store")
        exprs = ["ab-ak-kb", "cd-cm-md"]
        cold = api.compile_many(exprs, 32, options=opts)
        assert cold.stats.classes == 1
        assert cold.stats.dedup_hits == 1
        warm = api.compile_many(exprs, 32, options=opts)
        assert warm.stats.searches == 0

    def test_options_store_dir_default_none(self):
        assert api.Options().store_dir is None


class TestNetworkIntegration:
    def test_isomorphic_chain_steps_share_search(self):
        from repro.core.network import NetworkContractor, parse_network

        spec = parse_network("ab,bc,cd->ad", 24)
        nc = NetworkContractor(spec, Cogent(arch="V100", top_k=2))
        assert len(nc.path.steps) == 2
        assert nc.program.stats.classes == 1
        assert nc.program.stats.dedup_hits == 1
        rng = np.random.default_rng(0)
        ops = [rng.random((24, 24)) for _ in range(3)]
        assert np.allclose(nc.execute(*ops), nc.reference(*ops))

    def test_network_store_warms_across_instances(self, tmp_path):
        from repro.core.network import NetworkContractor, parse_network

        spec = parse_network("ab,bc->ac", 24)
        NetworkContractor(
            spec, Cogent(arch="V100", top_k=2), store=tmp_path
        )
        warm = NetworkContractor(
            spec, Cogent(arch="V100", top_k=2), store=tmp_path
        )
        assert warm.program.stats.searches == 0


class TestAppsIntegration:
    def test_ccsd_precompile_seeds_cache(self):
        from repro.apps.ccsd import CcsdDriver

        driver = CcsdDriver(3, 4, generator=Cogent(arch="V100", top_k=2))
        stats = driver.precompile()
        assert stats.contractions == 3
        assert len(driver.cache) == 3
        # Sweeps are now pure cache hits.
        driver.cache.hits = driver.cache.misses = 0
        driver.residual(np.zeros((4, 4, 3, 3)))
        assert driver.cache.misses == 0

    def test_ccsdt_precompile_with_store(self, tmp_path):
        from repro.apps.ccsdt import TriplesDriver

        gen1 = Cogent(arch="V100", top_k=2)
        d1 = TriplesDriver(3, 3, generator=gen1, store_dir=tmp_path)
        stats = d1.precompile()
        assert stats.contractions == 18
        # The 18 d1/d2 permutation terms are structurally distinct;
        # dedup pays off across *processes* via the store, not within
        # one term set.
        assert stats.classes == 18
        d2 = TriplesDriver(
            3, 3, generator=Cogent(arch="V100", top_k=2),
            store_dir=tmp_path,
        )
        warm = d2.precompile()
        assert warm.searches == 0
        for term in d1.terms:
            assert d1._kernels[term.name].config.describe() \
                == d2._kernels[term.name].config.describe()

    def test_ccsdt_energy_matches_reference_via_program(self):
        from repro.apps.ccsdt import TriplesDriver

        driver = TriplesDriver(2, 3, generator=Cogent(arch="V100",
                                                      top_k=2))
        assert driver.energy().energy == pytest.approx(
            driver.reference_energy()
        )


class TestCompileCli:
    def test_compile_cold_then_warm(self, tmp_path, capsys):
        from repro.cli import main

        store = str(tmp_path / "store")
        assert main(["compile", "ttm_mode1", "ttm_mode2",
                     "--store-dir", store]) == 0
        out = capsys.readouterr().out
        assert "search" in out and "2 searches" in out
        assert main(["compile", "ttm_mode1", "ttm_mode2",
                     "--store-dir", store]) == 0
        out = capsys.readouterr().out
        assert "0 searches" in out and "store 2 hits" in out

    def test_compile_json_payload(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "compile.json"
        assert main(["compile", "ttm_mode1", "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["dedup"]["stats"]["classes"] == 1
        assert payload["kernels"][0]["name"] == "ttm_mode1"
        assert payload["kernels"][0]["cost"] > 0

    def test_batch_json_reports_dedup(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "batch.json"
        store = str(tmp_path / "store")
        assert main(["batch", "ttm_mode1", "ttm_mode2",
                     "--store-dir", store, "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        dedup = payload["dedup"]["stats"]
        assert dedup["contractions"] == 2
        assert dedup["store_misses"] == 2
        assert main(["batch", "ttm_mode1", "ttm_mode2",
                     "--store-dir", store, "--json", str(path)]) == 0
        warm = json.loads(path.read_text())
        assert warm["dedup"]["stats"]["store_hits"] == 2
        assert warm["dedup"]["stats"]["searches"] == 0
        out = capsys.readouterr().out
        assert "dedup" in out and "store" in out
