"""Tests for kernel persistence (repro.core.serialize)."""

import json

import pytest

from repro import Cogent, parse
from repro.core.serialize import (
    config_from_dict,
    config_to_dict,
    contraction_from_dict,
    contraction_to_dict,
    kernel_to_meta,
    load_meta,
    load_plan,
    save_kernel,
    verify_saved_kernel,
)


@pytest.fixture(scope="module")
def kernel():
    return Cogent(arch="V100", top_k=4).generate("abcd-aebf-dfce",
                                                 sizes=24)


class TestCodecs:
    def test_contraction_round_trip(self, eq1_small):
        data = contraction_to_dict(eq1_small)
        back = contraction_from_dict(json.loads(json.dumps(data)))
        assert str(back) == str(eq1_small)
        assert back.sizes == dict(eq1_small.sizes)

    def test_config_round_trip(self, kernel):
        data = config_to_dict(kernel.config)
        back = config_from_dict(json.loads(json.dumps(data)))
        assert back.describe() == kernel.config.describe()

    def test_meta_is_json_serialisable(self, kernel):
        text = json.dumps(kernel_to_meta(kernel))
        meta = json.loads(text)
        assert meta["kernel_name"] == "tc_kernel"
        assert meta["dtype_bytes"] == 8
        assert meta["model_cost_transactions"] > 0

    def test_meta_includes_prediction(self, kernel):
        meta = kernel_to_meta(kernel)
        assert meta["predicted"]["gflops"] > 0
        assert meta["predicted"]["limiter"] in ("dram", "fma", "smem")


class TestSaveLoad:
    def test_save_writes_all_sources(self, kernel, tmp_path):
        out = save_kernel(kernel, tmp_path / "k")
        names = {p.name for p in out.iterdir()}
        assert names == {
            "kernel.cu", "driver.cu", "kernel_emu.c", "kernel.cl",
            "meta.json",
        }

    def test_save_without_opencl(self, kernel, tmp_path):
        out = save_kernel(kernel, tmp_path / "k2", include_opencl=False)
        assert not (out / "kernel.cl").exists()

    def test_load_plan_matches(self, kernel, tmp_path):
        out = save_kernel(kernel, tmp_path / "k3")
        plan = load_plan(out)
        assert plan.config.describe() == kernel.config.describe()
        assert str(plan.contraction) == str(kernel.contraction)
        assert plan.dtype_bytes == 8

    def test_verify_saved_kernel(self, kernel, tmp_path):
        out = save_kernel(kernel, tmp_path / "k4")
        assert verify_saved_kernel(out)

    def test_verify_detects_tampering(self, kernel, tmp_path):
        out = save_kernel(kernel, tmp_path / "k5")
        cu = out / "kernel.cu"
        cu.write_text(cu.read_text().replace("r_c", "r_z"))
        assert not verify_saved_kernel(out)

    def test_version_check(self, kernel, tmp_path):
        out = save_kernel(kernel, tmp_path / "k6")
        meta_path = out / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["format_version"] = 99
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(ValueError):
            load_meta(out)

    def test_split_specs_recorded(self, tmp_path):
        gen = Cogent(arch="V100", split_factors=(4,))
        kernel = gen.generate(
            parse("abc-adc-bd",
                  {"a": 256, "b": 256, "c": 256, "d": 256})
        )
        meta = kernel_to_meta(kernel)
        if kernel.split_specs:
            assert meta["split_specs"][0]["factor"] == 4
            assert "original_contraction" in meta

    def test_loaded_plan_is_executable(self, tmp_path):
        from repro.gpu.executor import verify_plan

        small = Cogent(arch="V100", top_k=1).generate(
            "ab-ak-kb", sizes=8
        )
        out = save_kernel(small, tmp_path / "k7")
        assert verify_plan(load_plan(out))
