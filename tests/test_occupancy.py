"""Tests for the occupancy calculator (repro.gpu.occupancy)."""

import pytest

from repro.gpu.arch import get_arch
from repro.gpu.occupancy import compute_occupancy


class TestLimits:
    def test_thread_limited(self, v100):
        occ = compute_occupancy(v100, 1024, 0, 32)
        assert occ.blocks_per_sm == 2
        assert occ.limiter == "threads"
        assert occ.fraction == 1.0

    def test_smem_limited(self, v100):
        occ = compute_occupancy(v100, 64, 48 * 1024, 32)
        assert occ.blocks_per_sm == 2
        assert occ.limiter == "shared_memory"

    def test_register_limited(self, v100):
        occ = compute_occupancy(v100, 256, 0, 128)
        # 65536 / (128*256) = 2 blocks.
        assert occ.blocks_per_sm == 2
        assert occ.limiter == "registers"

    def test_max_blocks_limited(self, v100):
        occ = compute_occupancy(v100, 32, 0, 16)
        assert occ.blocks_per_sm == 32
        assert occ.limiter == "max_blocks"

    def test_oversized_block_cannot_run(self, v100):
        occ = compute_occupancy(v100, 2048, 0, 32)
        assert occ.blocks_per_sm == 0
        assert occ.limiter == "threads_per_block"

    def test_oversized_smem_cannot_run(self, v100):
        occ = compute_occupancy(v100, 128, 200 * 1024, 32)
        assert occ.blocks_per_sm == 0
        assert occ.limiter == "shared_memory_per_block"

    def test_too_many_registers_cannot_run(self, v100):
        occ = compute_occupancy(v100, 128, 0, 300)
        assert occ.blocks_per_sm == 0
        assert occ.limiter == "registers_per_thread"


class TestFraction:
    def test_fraction_capped_at_one(self, v100):
        occ = compute_occupancy(v100, 2048 // 2, 0, 16)
        assert occ.fraction <= 1.0

    def test_active_threads(self, v100):
        occ = compute_occupancy(v100, 256, 16 * 1024, 64)
        assert occ.active_threads == occ.blocks_per_sm * 256

    def test_p100_smaller_smem_than_v100(self, p100, v100):
        p = compute_occupancy(p100, 128, 24 * 1024, 32)
        v = compute_occupancy(v100, 128, 24 * 1024, 32)
        assert p.blocks_per_sm <= v.blocks_per_sm


class TestArchLookup:
    def test_get_arch_case_insensitive(self):
        assert get_arch("v100").name == "V100"

    def test_get_arch_unknown(self):
        with pytest.raises(KeyError):
            get_arch("H100")

    def test_peak_gflops_by_dtype(self, v100):
        assert v100.peak_gflops(8) == v100.peak_gflops_dp
        assert v100.peak_gflops(4) == v100.peak_gflops_sp

    def test_max_warps(self, v100):
        assert v100.max_warps_per_sm == 64
