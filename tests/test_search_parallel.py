"""Tests for the parallel, streaming configuration search engine.

Covers the bounded top-k collector, the serial/parallel determinism
guarantee (the issue's "determinism guard"), the ``SearchStats`` timing
breakdown, the pool-unavailable serial fallback, and the batch
generation API.
"""

import pytest

from repro import Cogent, parse
from repro.core.constraints import (
    HARDWARE_RULES,
    PERFORMANCE_RULES,
    ConstraintChecker,
)
from repro.core.enumeration import Enumerator, SearchStats, TopK
from repro.core.mapping import canonical_key
from repro.core.plan import KernelPlan
from repro.tccg import get

#: TCCG entries the determinism guard runs over (>= 5 per the issue).
DETERMINISM_SUITE = (
    "ttm_mode1", "ttm_mode2", "ttm_4d", "mo_stage1", "ccsd_eq1",
)


@pytest.fixture
def eq1():
    return parse("abcd-aebf-dfce", 24)


class TestTopK:
    def test_keeps_k_smallest(self):
        top = TopK(3)
        cfg = object()
        for cost in (9, 1, 7, 3, 5):
            top.push(cost, f"k{cost}", cfg)
        assert [cost for cost, _, _ in top.items()] == [1, 3, 5]

    def test_tie_breaks_on_canonical_key(self):
        top = TopK(2)
        cfg = object()
        for key in ("zz", "aa", "mm"):
            top.push(10, key, cfg)
        assert [key for _, key, _ in top.items()] == ["aa", "mm"]

    def test_insertion_order_irrelevant(self):
        entries = [(5, "e"), (1, "a"), (5, "b"), (2, "c"), (5, "a")]
        tops = []
        for ordering in (entries, list(reversed(entries))):
            top = TopK(3)
            for cost, key in ordering:
                top.push(cost, key, None)
            tops.append([(c, k) for c, k, _ in top.items()])
        assert tops[0] == tops[1] == [(1, "a"), (2, "c"), (5, "a")]

    def test_bounded_memory(self):
        top = TopK(4)
        for cost in range(1000):
            top.push(cost, str(cost), None)
        assert len(top) == 4


class TestStreamingSearch:
    def test_matches_full_enumeration_ranking(self, eq1, v100):
        """The bounded streaming head equals the full sort's head."""
        from repro.core.costmodel import CostModel

        full = Enumerator(eq1, v100).enumerate()
        ranked = CostModel(8, v100.transaction_bytes).rank(
            eq1, full.configs
        )
        streamed = Enumerator(eq1, v100).search(keep=32)
        want = [(cost, cfg.describe()) for cfg, cost in ranked[:32]]
        got = [
            (cost, cfg.describe())
            for cost, cfg in zip(streamed.costs, streamed.configs)
        ]
        assert got == want

    def test_stats_match_full_enumeration(self, eq1, v100):
        full = Enumerator(eq1, v100).enumerate().stats
        streamed = Enumerator(eq1, v100).search(keep=8).stats
        assert streamed.raw_combinations == full.raw_combinations
        assert streamed.accepted == full.accepted
        assert streamed.hardware_pruned == full.hardware_pruned
        assert streamed.performance_pruned == full.performance_pruned

    def test_search_stats_populated(self, eq1, v100):
        result = Enumerator(eq1, v100).search(keep=16)
        stats = result.search_stats
        assert isinstance(stats, SearchStats)
        assert stats.configs_checked == (
            result.stats.raw_combinations - result.stats.duplicates
        )
        assert stats.configs_ranked >= len(result.configs)
        assert stats.kept == len(result.configs) == 16
        assert stats.total_s > 0
        assert stats.pruning_s > 0
        assert stats.ranking_s > 0
        assert stats.configs_per_second > 0
        summary = stats.summary()
        assert "cfg/s" in summary and "prune" in summary

    def test_as_dict_round_trip(self, eq1, v100):
        stats = Enumerator(eq1, v100).search(keep=4).search_stats
        data = stats.as_dict()
        assert data["configs_checked"] == stats.configs_checked
        assert data["workers"] == 1
        assert set(data) >= {
            "enumeration_s", "pruning_s", "ranking_s", "simulation_s",
            "total_s", "kept", "configs_per_second",
        }

    def test_parallel_equals_serial(self, eq1, v100):
        serial = Enumerator(eq1, v100).search(keep=24, _workers=1)
        parallel = Enumerator(eq1, v100).search(keep=24, _workers=3)
        assert parallel.search_stats.workers in (1, 3)  # 1 = fallback
        assert [c.describe() for c in serial.configs] == \
            [c.describe() for c in parallel.configs]
        assert serial.costs == parallel.costs
        assert serial.stats.raw_combinations == \
            parallel.stats.raw_combinations
        assert serial.stats.accepted == parallel.stats.accepted

    def test_pool_failure_falls_back_to_serial(self, eq1, v100,
                                               monkeypatch):
        def boom(self, keep, workers):
            raise OSError("no process pool in this sandbox")

        monkeypatch.setattr(Enumerator, "_search_parallel", boom)
        result = Enumerator(eq1, v100).search(keep=8, _workers=4)
        assert result.search_stats.workers == 1
        assert result.configs

    def test_fallback_rejects_ranked_when_nothing_accepted(self, v100):
        # Tiny problem: performance rules reject everything, so the
        # bounded reject heap must carry ranked hardware-clean configs.
        tiny = parse("ab-ak-kb", 4)
        result = Enumerator(tiny, v100).search(keep=8)
        assert not result.configs
        assert result.feasible_rejects
        assert result.reject_costs == sorted(result.reject_costs)


class TestDeterminismGuard:
    """Issue satellite: parallel and serial search must pick the
    identical best configuration on >= 5 TCCG contractions."""

    @pytest.mark.parametrize("name", DETERMINISM_SUITE)
    def test_workers_agree_on_best_config(self, name):
        contraction = get(name).contraction()
        serial = Cogent(arch="V100").generate(contraction)
        parallel_gen = Cogent(arch="V100")
        parallel_gen.workers = 2
        parallel = parallel_gen.generate(contraction)
        assert serial.config.describe() == parallel.config.describe()
        assert serial.cost == parallel.cost
        assert serial.selection_mode == parallel.selection_mode

    def test_canonical_key_total_order(self, eq1, v100):
        result = Enumerator(eq1, v100).search(keep=16)
        keys = [canonical_key(c) for c in result.configs]
        assert len(set(keys)) == len(keys)


class TestAdaptiveConstraintOrdering:
    def test_classify_agrees_with_check(self, eq1, v100):
        enumerator = Enumerator(eq1, v100)
        checker = ConstraintChecker(v100)
        fresh = ConstraintChecker(v100)
        count = 0
        for xp in enumerator.enumerate_x_side()[:6]:
            for yp in enumerator.enumerate_y_side()[:6]:
                for kp in enumerator.enumerate_tb_k()[:3]:
                    from repro.core.mapping import config_from_spec

                    config = config_from_spec(
                        eq1, tb_x=xp.tb, tb_y=yp.tb, reg_x=xp.reg,
                        reg_y=yp.reg, tb_k=kp, fill_defaults=True,
                    )
                    plan = KernelPlan(eq1, config, 8)
                    verdict = checker.classify(plan)
                    report = fresh.check(plan)
                    expected = (
                        "hardware" if not report.feasible
                        else "performance" if not report.accepted
                        else "accepted"
                    )
                    assert verdict == expected
                    count += 1
        assert count > 50

    def test_rule_stats_accumulate(self, eq1, v100):
        enumerator = Enumerator(eq1, v100)
        result = enumerator.search(keep=4)
        stats = enumerator.checker.rule_stats
        total_rejections = sum(s.rejections for s in stats.values())
        assert total_rejections == (
            result.stats.hardware_pruned
            + result.stats.performance_pruned
        )
        assert any(s.time_s > 0 for s in stats.values())
        assert all(0.0 <= s.selectivity <= 1.0 for s in stats.values())

    def test_reorder_prefers_selective_cheap_rules(self, v100):
        checker = ConstraintChecker(v100)
        # Simulate measurements: make one rule overwhelmingly the most
        # efficient rejector and verify it is hoisted to the front.
        for name in PERFORMANCE_RULES:
            s = checker.rule_stats[name]
            s.checks, s.rejections, s.time_s = 100, 1, 1.0
        hot = checker.rule_stats["occupancy"]
        hot.checks, hot.rejections, hot.time_s = 100, 90, 0.01
        checker._reorder()
        _hw, perf = checker.rule_order()
        assert perf[0] == "occupancy"

    def test_canonical_order_reported_by_check(self, eq1, v100):
        # check() reports violations in declaration order regardless of
        # adaptive ordering, so diagnostics stay stable.
        assert tuple(HARDWARE_RULES) == (
            "smem", "registers", "max_threads", "nonempty_block"
        )
        checker = ConstraintChecker(v100)
        hw, perf = checker.rule_order()
        assert set(hw) == set(HARDWARE_RULES)
        assert set(perf) == set(PERFORMANCE_RULES)


class TestGenerateMany:
    def test_results_in_input_order(self):
        names = ("ttm_mode1", "ttm_mode2")
        contractions = [get(n).contraction() for n in names]
        gen = Cogent(arch="V100")
        kernels = gen.generate_many(contractions)
        singles = [gen.generate(c) for c in contractions]
        for kernel, single in zip(kernels, singles):
            assert kernel.config.describe() == single.config.describe()

    def test_parallel_batch_matches_serial(self):
        contractions = [
            get(n).contraction() for n in ("ttm_mode1", "ttm_mode3")
        ]
        serial = Cogent(arch="V100").generate_many(
            contractions, workers=1
        )
        parallel = Cogent(arch="V100").generate_many(
            contractions, workers=2
        )
        for a, b in zip(serial, parallel):
            assert a.config.describe() == b.config.describe()
            assert a.cost == b.cost

    def test_accepts_expression_strings(self):
        kernels = Cogent(arch="V100").generate_many(
            ["ab-ak-kb", "ab-a-b"], sizes=64
        )
        assert len(kernels) == 2
        assert kernels[0].contraction.internal_indices == ("k",)

    def test_shared_cache_dedupes_repeats(self):
        gen = Cogent(arch="V100")
        from repro.core.cache import KernelCache

        cache = KernelCache(gen)
        c = get("ttm_mode1").contraction()
        kernels = gen.generate_many([c, c, c], cache=cache)
        assert kernels[0] is kernels[1] is kernels[2]
        assert len(cache) == 1
        # A second batch is served fully from cache.
        again = gen.generate_many([c], cache=cache)
        assert again[0] is kernels[0]
        assert cache.hits >= 1
