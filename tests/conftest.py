"""Shared fixtures for the test suite."""

from __future__ import annotations

import shutil

import pytest

from repro import Cogent, parse
from repro.gpu.arch import PASCAL_P100, VOLTA_V100


@pytest.fixture(scope="session")
def v100():
    return VOLTA_V100

@pytest.fixture(scope="session")
def p100():
    return PASCAL_P100


@pytest.fixture
def eq1_small():
    """The paper's Eq. 1 at a small, non-divisible size mix."""
    return parse(
        "abcd-aebf-dfce",
        {"a": 7, "b": 5, "c": 6, "d": 4, "e": 3, "f": 5},
    )


@pytest.fixture
def eq1_repr():
    """Eq. 1 at a representative (benchmark-like) size."""
    return parse("abcd-aebf-dfce", 24)


@pytest.fixture
def matmul():
    """Plain matrix multiplication as a degenerate contraction."""
    return parse("ab-ak-kb", {"a": 24, "b": 16, "k": 12})


@pytest.fixture(scope="session")
def cogent_v100():
    return Cogent(arch="V100")


def has_cc() -> bool:
    return shutil.which("cc") is not None or shutil.which("gcc") is not None


requires_cc = pytest.mark.skipif(
    not has_cc(), reason="no C compiler available"
)
