"""Tests for the Tensor-Comprehensions-style autotuner (repro.baselines.tc)."""

import pytest

from repro.baselines.tc import TcAutotuner, TuneResult
from repro.core.mapping import Dim
from repro.core.parser import parse


@pytest.fixture
def contraction():
    return parse("abcd-aebf-dfce", 32)


@pytest.fixture
def tuner(v100):
    return TcAutotuner(v100, dtype_bytes=4, population=10,
                       generations=3, seed=42)


class TestGenome:
    def test_random_genomes_are_valid_configs(self, tuner, contraction):
        import numpy as np

        rng = np.random.default_rng(0)
        for _ in range(20):
            genome = tuner._random_genome(contraction, rng)
            config = tuner._to_config(contraction, genome)
            config.validate_for(contraction)  # must not raise

    def test_internals_always_on_tbk(self, tuner, contraction):
        import numpy as np

        rng = np.random.default_rng(1)
        genome = tuner._random_genome(contraction, rng)
        for gene in genome:
            if gene.index in ("e", "f"):
                assert gene.dim is Dim.TB_K

    def test_grid_genes_have_tile_one(self, tuner, contraction):
        import numpy as np

        rng = np.random.default_rng(2)
        for _ in range(20):
            genome = tuner._random_genome(contraction, rng)
            for gene in genome:
                if gene.dim is Dim.GRID:
                    assert gene.tile == 1


class TestTune:
    def test_returns_result(self, tuner, contraction):
        result = tuner.tune(contraction)
        assert isinstance(result, TuneResult)
        assert result.evaluations == 30  # population * generations

    def test_curve_is_monotone_nondecreasing(self, tuner, contraction):
        curve = tuner.tune(contraction).curve
        assert all(b >= a for a, b in zip(curve, curve[1:]))

    def test_curve_length_equals_evaluations(self, tuner, contraction):
        result = tuner.tune(contraction)
        assert len(result.curve) == result.evaluations

    def test_deterministic_with_seed(self, v100, contraction):
        r1 = TcAutotuner(v100, population=8, generations=2,
                         seed=7).tune(contraction)
        r2 = TcAutotuner(v100, population=8, generations=2,
                         seed=7).tune(contraction)
        assert r1.curve == r2.curve
        assert r1.best_gflops == r2.best_gflops

    def test_different_seeds_explore_differently(self, v100, contraction):
        r1 = TcAutotuner(v100, population=8, generations=2,
                         seed=1).tune(contraction)
        r2 = TcAutotuner(v100, population=8, generations=2,
                         seed=2).tune(contraction)
        assert r1.curve != r2.curve

    def test_best_config_is_valid(self, tuner, contraction):
        result = tuner.tune(contraction)
        assert result.best_config is not None
        result.best_config.validate_for(contraction)

    def test_modeled_tuning_time(self, tuner, contraction):
        result = tuner.tune(contraction)
        assert result.modeled_tuning_time_s == pytest.approx(
            result.evaluations * tuner.eval_overhead_s
        )


class TestUntuned:
    def test_untuned_is_terrible(self, tuner, contraction):
        """Matches the paper: TC without tuning achieves < 1 GFLOPS."""
        assert tuner.untuned_gflops(contraction) < 10.0

    def test_tuning_helps_enormously(self, tuner, contraction):
        result = tuner.tune(contraction)
        assert result.best_gflops > 50 * result.untuned_gflops

    def test_default_config_all_serial(self, contraction):
        cfg = TcAutotuner.default_config(contraction)
        assert cfg.threads_per_block == 1
        assert all(m.tile == 1 for m in cfg.mappings)


class TestVsCogent:
    def test_cogent_beats_tc_tuned(self, v100, contraction):
        """The headline of Figs. 6-7: model-driven COGENT outperforms
        the genetically autotuned polyhedral compiler."""
        from repro import Cogent

        tc = TcAutotuner(v100, dtype_bytes=4, population=20,
                         generations=5, seed=0).tune(contraction)
        cogent = Cogent(arch=v100, dtype_bytes=4).generate(contraction)
        assert cogent.candidates[0].simulated.gflops > tc.best_gflops
