"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_gen_defaults(self):
        args = build_parser().parse_args(["gen", "ab-ak-kb"])
        assert args.arch == "V100"
        assert args.emit == "cuda"


class TestSuiteCommand:
    def test_lists_48(self, capsys):
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 48

    def test_group_filter(self, capsys):
        assert main(["suite", "--group", "mo"]) == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 3


class TestGenCommand:
    def test_gen_expression(self, capsys):
        assert main(["gen", "ab-ak-kb", "--sizes", "64"]) == 0
        out = capsys.readouterr().out
        assert "__global__" in out

    def test_gen_benchmark_name(self, capsys):
        assert main(["gen", "ccsd_eq1"]) == 0
        assert "__global__" in capsys.readouterr().out

    def test_gen_cemu(self, capsys):
        assert main(["gen", "ab-ak-kb", "--sizes", "64",
                     "--emit", "cemu"]) == 0
        assert "int main(" in capsys.readouterr().out

    def test_gen_driver(self, capsys):
        assert main(["gen", "ab-ak-kb", "--sizes", "64",
                     "--emit", "driver"]) == 0
        assert "cudaMalloc" in capsys.readouterr().out

    def test_gen_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "kernel.cu"
        assert main(["gen", "ab-ak-kb", "--sizes", "64",
                     "-o", str(out_file)]) == 0
        assert "__global__" in out_file.read_text()

    def test_gen_float(self, capsys):
        assert main(["gen", "ab-ak-kb", "--sizes", "64",
                     "--dtype", "float"]) == 0
        assert "float" in capsys.readouterr().out


class TestRankCommand:
    def test_rank(self, capsys):
        assert main(["rank", "ab-ak-kb", "--sizes", "128",
                     "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "configurations after pruning" in out
        assert "GFLOPS" in out


class TestBenchCommand:
    def test_bench_limited(self, capsys):
        assert main(["bench", "--group", "mo", "--limit", "1",
                     "--frameworks", "cogent,talsh"]) == 0
        out = capsys.readouterr().out
        assert "mo_stage1" in out
        assert "geomean" in out

    def test_bench_csv(self, capsys):
        assert main(["bench", "--group", "mo", "--limit", "1",
                     "--frameworks", "cogent,talsh", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("id,name,expr,cogent,talsh")


class TestTuneCommand:
    def test_tune_small(self, capsys):
        assert main(["tune", "ab-ak-kb", "--sizes", "128",
                     "--population", "6", "--generations", "2"]) == 0
        out = capsys.readouterr().out
        assert "untuned" in out
        assert "COGENT (model-driven)" in out
