"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_gen_defaults(self):
        args = build_parser().parse_args(["gen", "ab-ak-kb"])
        assert args.arch == "V100"
        assert args.emit == "cuda"


class TestSuiteCommand:
    def test_lists_48(self, capsys):
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 48

    def test_group_filter(self, capsys):
        assert main(["suite", "--group", "mo"]) == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 3


class TestGenCommand:
    def test_gen_expression(self, capsys):
        assert main(["gen", "ab-ak-kb", "--sizes", "64"]) == 0
        out = capsys.readouterr().out
        assert "__global__" in out

    def test_gen_benchmark_name(self, capsys):
        assert main(["gen", "ccsd_eq1"]) == 0
        assert "__global__" in capsys.readouterr().out

    def test_gen_cemu(self, capsys):
        assert main(["gen", "ab-ak-kb", "--sizes", "64",
                     "--emit", "cemu"]) == 0
        assert "int main(" in capsys.readouterr().out

    def test_gen_driver(self, capsys):
        assert main(["gen", "ab-ak-kb", "--sizes", "64",
                     "--emit", "driver"]) == 0
        assert "cudaMalloc" in capsys.readouterr().out

    def test_gen_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "kernel.cu"
        assert main(["gen", "ab-ak-kb", "--sizes", "64",
                     "-o", str(out_file)]) == 0
        assert "__global__" in out_file.read_text()

    def test_gen_float(self, capsys):
        assert main(["gen", "ab-ak-kb", "--sizes", "64",
                     "--dtype", "float"]) == 0
        assert "float" in capsys.readouterr().out


class TestRankCommand:
    def test_rank(self, capsys):
        assert main(["rank", "ab-ak-kb", "--sizes", "128",
                     "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "configurations after pruning" in out
        assert "GFLOPS" in out


class TestBenchCommand:
    def test_bench_limited(self, capsys):
        assert main(["bench", "--group", "mo", "--limit", "1",
                     "--frameworks", "cogent,talsh"]) == 0
        out = capsys.readouterr().out
        assert "mo_stage1" in out
        assert "geomean" in out

    def test_bench_csv(self, capsys):
        assert main(["bench", "--group", "mo", "--limit", "1",
                     "--frameworks", "cogent,talsh", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("id,name,expr,cogent,talsh")

    def test_bench_prints_pipeline_stats(self, capsys):
        assert main(["bench", "--group", "mo", "--limit", "1",
                     "--frameworks", "cogent,talsh"]) == 0
        out = capsys.readouterr().out
        assert "pipeline:" in out
        assert "cells" in out

    def test_bench_workers_cache_and_json(self, tmp_path, capsys):
        import json

        json_path = tmp_path / "bench.json"
        argv = ["bench", "--group", "mo", "--limit", "2",
                "--frameworks", "cogent,talsh", "--workers", "2",
                "--cache-dir", str(tmp_path / "eval"),
                "--json", str(json_path)]
        assert main(argv) == 0
        cold = json.loads(json_path.read_text())
        assert cold["workers"] == 2
        assert cold["stats"]["cells"] == 4
        assert cold["stats"]["evaluated"] == 4
        assert cold["stats"]["cache_hits"] == 0
        cell = cold["rows"][0]["results"]["cogent"]
        assert cell["gflops"] > 0
        assert not cell["cached"]

        capsys.readouterr()
        assert main(argv) == 0
        warm = json.loads(json_path.read_text())
        assert warm["stats"]["evaluated"] == 0
        assert warm["stats"]["cache_hits"] == 4
        assert warm["rows"][0]["results"]["cogent"]["cached"]
        assert warm["rows"][0]["results"]["cogent"]["gflops"] == \
            cold["rows"][0]["results"]["cogent"]["gflops"]


class TestTuneCommand:
    def test_tune_small(self, capsys):
        assert main(["tune", "ab-ak-kb", "--sizes", "128",
                     "--population", "6", "--generations", "2"]) == 0
        out = capsys.readouterr().out
        assert "untuned" in out
        assert "COGENT (model-driven)" in out


class TestBatchCommand:
    def test_batch_by_names(self, capsys):
        assert main(["batch", "ttm_mode1", "ttm_mode2"]) == 0
        out = capsys.readouterr().out
        assert "ttm_mode1" in out and "ttm_mode2" in out
        assert "cfg/s" in out
        assert "batch wall-time" in out

    def test_batch_group_with_limit(self, capsys):
        assert main(["batch", "--group", "mo", "--limit", "1"]) == 0
        assert "mo_stage1" in capsys.readouterr().out

    def test_batch_json(self, tmp_path, capsys):
        import json

        path = tmp_path / "batch.json"
        assert main(["batch", "ttm_mode1", "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["arch"] == "V100"
        assert len(payload["kernels"]) == 1
        kernel = payload["kernels"][0]
        assert kernel["name"] == "ttm_mode1"
        assert kernel["search"]["configs_checked"] > 0
        assert kernel["search"]["kept"] > 0

    def test_batch_by_numeric_id(self, capsys):
        assert main(["batch", "1"]) == 0
        assert "cfg/s" in capsys.readouterr().out
