"""End-to-end tests of the C-emulation backend: the emitted C program is
compiled with the system compiler, executed on real data, and compared
against numpy.einsum.  This validates the *generated source text* —
index arithmetic, staging layout, bounds handling — not just the plan
semantics."""

import numpy as np
import pytest

from repro.core.codegen import get_target
from repro.core.codegen.cemu import EmulationError, compile_and_run
from repro.core.mapping import config_from_spec
from repro.core.parser import parse
from repro.core.plan import KernelPlan
from repro.gpu.executor import random_operands, reference_contract

from .conftest import requires_cc


def generate_c_emulation(plan, kernel_name="tc_kernel_emu"):
    return get_target("cemu").emit_kernel(plan, kernel_name[:-len("_emu")])


def make_plan(c, dtype_bytes=8, **spec):
    return KernelPlan(c, config_from_spec(c, **spec), dtype_bytes)


def check(plan, seed=0, rtol=1e-10):
    c = plan.contraction
    dtype = np.float64 if plan.dtype_bytes == 8 else np.float32
    if plan.dtype_bytes == 4:
        rtol = 1e-4
    a, b = random_operands(c, dtype, seed)
    got = compile_and_run(plan, a, b)
    want = reference_contract(c, a, b)
    assert got.shape == want.shape
    assert np.allclose(got, want, rtol=rtol, atol=rtol)


class TestSourceShape:
    def test_contains_main_and_kernel(self, eq1_small):
        plan = make_plan(eq1_small, tb_x=[("a", 4)], tb_k=[("e", 2)])
        src = generate_c_emulation(plan)
        assert "int main(" in src
        assert "static void tc_kernel_emu(" in src
        assert src.count("{") == src.count("}")

    def test_no_cuda_constructs(self, eq1_small):
        plan = make_plan(eq1_small, tb_x=[("a", 4)])
        src = generate_c_emulation(plan)
        assert "__global__" not in src
        assert "__shared__" not in src
        assert "__syncthreads" not in src


@requires_cc
class TestCompileAndRun:
    def test_matmul(self):
        c = parse("ab-ak-kb", {"a": 8, "b": 8, "k": 8})
        check(make_plan(
            c, tb_x=[("a", 4)], tb_y=[("b", 4)], tb_k=[("k", 4)]
        ))

    def test_matmul_partial_tiles(self):
        c = parse("ab-ak-kb", {"a": 7, "b": 9, "k": 5})
        check(make_plan(
            c, tb_x=[("a", 4)], tb_y=[("b", 4)], tb_k=[("k", 4)]
        ))

    def test_eq1_register_tiles(self, eq1_small):
        check(make_plan(
            eq1_small,
            tb_x=[("a", 4)], tb_y=[("d", 2)],
            reg_x=[("b", 2)], reg_y=[("c", 3)],
            tb_k=[("e", 2), ("f", 2)],
        ))

    def test_eq1_multi_index_tb(self, eq1_small):
        check(make_plan(
            eq1_small,
            tb_x=[("a", 4), ("b", 2)], tb_y=[("d", 2), ("c", 2)],
            tb_k=[("f", 3), ("e", 2)],
        ))

    def test_grid_heavy_mapping(self, eq1_small):
        check(make_plan(
            eq1_small, tb_x=[("a", 4)], tb_k=[("e", 3)],
        ))

    def test_single_precision(self):
        c = parse("ab-ak-kb", {"a": 8, "b": 8, "k": 8})
        check(make_plan(
            c, 4, tb_x=[("a", 8)], tb_y=[("b", 4)], tb_k=[("k", 4)]
        ))

    def test_ccsdt_shape(self):
        c = parse("abcdef-gdab-efgc", 4)
        check(make_plan(
            c,
            tb_x=[("a", 4)], tb_y=[("e", 4)],
            reg_x=[("b", 2)], reg_y=[("c", 2)],
            tb_k=[("g", 2)],
        ))

    def test_outer_product(self):
        c = parse("ab-a-b", {"a": 5, "b": 6})
        check(make_plan(c, tb_x=[("a", 3)], tb_y=[("b", 2)]))

    def test_ttm(self):
        c = parse("abc-adc-bd", {"a": 6, "b": 5, "c": 4, "d": 7})
        check(make_plan(
            c, tb_x=[("a", 4)], tb_y=[("b", 4)], tb_k=[("d", 3)]
        ))

    def test_bad_compiler_raises(self, eq1_small):
        plan = make_plan(eq1_small, tb_x=[("a", 4)])
        a, b = random_operands(eq1_small)
        with pytest.raises((EmulationError, FileNotFoundError)):
            compile_and_run(plan, a, b, cc="definitely-not-a-compiler")
