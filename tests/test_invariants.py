"""Cross-cutting invariants: renaming, scaling, and normalisation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.costmodel import CostModel
from repro.core.ir import Contraction, TensorRef
from repro.core.mapping import IndexMapping, KernelConfig
from repro.core.merging import normalize
from repro.core.parser import parse
from repro.core.plan import KernelPlan

from .test_properties import planned_contractions


def _rename(contraction: Contraction, mapping):
    def ref(t: TensorRef) -> TensorRef:
        return TensorRef(t.name, tuple(mapping[i] for i in t.indices))

    return Contraction(
        ref(contraction.c), ref(contraction.a), ref(contraction.b),
        {mapping[k]: v for k, v in contraction.sizes.items()},
    )


def _rename_config(config: KernelConfig, mapping) -> KernelConfig:
    return KernelConfig(tuple(
        IndexMapping(mapping[m.index], m.dim, m.tile)
        for m in config.mappings
    ))


@given(planned_contractions())
@settings(max_examples=30, deadline=None)
def test_index_renaming_invariance(plan):
    """Costs and geometry depend on structure, never on index names."""
    contraction = plan.contraction
    names = list(contraction.all_indices)
    mapping = {
        name: f"idx{pos}" for pos, name in enumerate(names)
    }
    renamed = _rename(contraction, mapping)
    renamed_plan = KernelPlan(
        renamed, _rename_config(plan.config, mapping), plan.dtype_bytes
    )
    model = CostModel(plan.dtype_bytes)
    assert model.cost(plan) == model.cost(renamed_plan)
    assert plan.num_blocks == renamed_plan.num_blocks
    assert plan.num_steps == renamed_plan.num_steps
    assert plan.smem_bytes == renamed_plan.smem_bytes
    assert plan.threads_per_block == renamed_plan.threads_per_block


@given(planned_contractions())
@settings(max_examples=25, deadline=None)
def test_cost_scales_with_blocks(plan):
    """Doubling an external GRID-ish dimension's extent scales blocks
    and never reduces the total transaction count."""
    contraction = plan.contraction
    model = CostModel(plan.dtype_bytes)
    base = model.cost(plan)
    doubled_sizes = dict(contraction.sizes)
    target = contraction.external_indices[0]
    doubled_sizes[target] *= 2
    doubled = KernelPlan(
        contraction.with_sizes(doubled_sizes), plan.config,
        plan.dtype_bytes,
    )
    assert model.cost(doubled) >= base


@given(planned_contractions())
@settings(max_examples=25, deadline=None)
def test_dtype_monotonicity(plan):
    """Single precision never costs more transactions than double."""
    dp = CostModel(8).cost(plan)
    sp = CostModel(4).cost(plan)
    assert sp <= dp


@given(planned_contractions())
@settings(max_examples=25, deadline=None)
def test_normalize_idempotent(plan):
    once, specs_once = normalize(plan.contraction)
    twice, specs_twice = normalize(once)
    assert specs_twice == []
    assert str(twice) == str(once)


class TestSymmetryOfSuite:
    def test_symmetric_suite_entries_cost_alike(self, v100):
        """sd_t_d1 permutation family members share block geometry up
        to relabeling: their generated plans have equal model cost."""
        from repro import Cogent
        from repro.tccg import get

        gen = Cogent(arch=v100, allow_split=False, top_k=1)
        costs = set()
        for name in ("sd_t_d1_1", "sd_t_d1_2", "sd_t_d1_4"):
            kernel = gen.generate(get(name).contraction())
            costs.add(kernel.cost)
        assert len(costs) == 1
