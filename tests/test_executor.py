"""Tests for the functional plan executor (repro.gpu.executor)."""

import numpy as np
import pytest

from repro.core.mapping import config_from_spec
from repro.core.parser import parse
from repro.core.plan import KernelPlan
from repro.gpu.executor import (
    execute_plan,
    random_operands,
    reference_contract,
    verify_plan,
)


def make_plan(c, dtype_bytes=8, **spec):
    return KernelPlan(c, config_from_spec(c, **spec), dtype_bytes)


class TestReference:
    def test_matches_manual_matmul(self):
        c = parse("ab-ak-kb", {"a": 5, "b": 4, "k": 3})
        a, b = random_operands(c)
        assert np.allclose(reference_contract(c, a, b), a @ b)

    def test_shape_mismatch_rejected(self):
        c = parse("ab-ak-kb", {"a": 5, "b": 4, "k": 3})
        with pytest.raises(ValueError):
            reference_contract(c, np.zeros((5, 5)), np.zeros((3, 4)))

    def test_random_operands_deterministic(self):
        c = parse("ab-ak-kb", {"a": 5, "b": 4, "k": 3})
        a1, b1 = random_operands(c, seed=7)
        a2, b2 = random_operands(c, seed=7)
        assert np.array_equal(a1, a2)
        assert np.array_equal(b1, b2)

    def test_random_operands_shapes(self):
        c = parse("abc-adc-bd", {"a": 2, "b": 3, "c": 4, "d": 5})
        a, b = random_operands(c)
        assert a.shape == (2, 5, 4)
        assert b.shape == (3, 5)


class TestExecutePlan:
    def test_matmul_exact_tiles(self):
        c = parse("ab-ak-kb", {"a": 8, "b": 8, "k": 8})
        plan = make_plan(
            c, tb_x=[("a", 4)], tb_y=[("b", 4)], tb_k=[("k", 4)]
        )
        a, b = random_operands(c)
        assert np.allclose(execute_plan(plan, a, b),
                           reference_contract(c, a, b))

    def test_partial_tiles(self):
        c = parse("ab-ak-kb", {"a": 7, "b": 5, "k": 9})
        plan = make_plan(
            c, tb_x=[("a", 4)], tb_y=[("b", 4)], tb_k=[("k", 4)]
        )
        a, b = random_operands(c)
        assert np.allclose(execute_plan(plan, a, b),
                           reference_contract(c, a, b))

    def test_eq1_with_register_tiles(self, eq1_small):
        plan = make_plan(
            eq1_small,
            tb_x=[("a", 4)], tb_y=[("d", 2)],
            reg_x=[("b", 2)], reg_y=[("c", 3)],
            tb_k=[("e", 2), ("f", 2)],
        )
        a, b = random_operands(eq1_small)
        assert np.allclose(execute_plan(plan, a, b),
                           reference_contract(eq1_small, a, b))

    def test_grid_only_mapping(self):
        c = parse("ab-ak-kb", {"a": 4, "b": 4, "k": 4})
        plan = make_plan(c)  # everything defaulted to grid / tile-1 TBk
        a, b = random_operands(c)
        assert np.allclose(execute_plan(plan, a, b),
                           reference_contract(c, a, b))

    def test_outer_product(self):
        c = parse("ab-a-b", {"a": 6, "b": 7})
        plan = make_plan(c, tb_x=[("a", 3)], tb_y=[("b", 4)])
        a, b = random_operands(c)
        assert np.allclose(execute_plan(plan, a, b), np.outer(a, b))

    def test_single_precision(self):
        c = parse("ab-ak-kb", {"a": 8, "b": 8, "k": 8})
        plan = make_plan(
            c, dtype_bytes=4,
            tb_x=[("a", 4)], tb_y=[("b", 4)], tb_k=[("k", 4)],
        )
        a, b = random_operands(c, np.float32)
        got = execute_plan(plan, a, b)
        assert got.dtype == np.float32
        assert np.allclose(got, reference_contract(c, a, b), rtol=1e-4)

    def test_operand_shape_checked(self):
        c = parse("ab-ak-kb", {"a": 8, "b": 8, "k": 8})
        plan = make_plan(c, tb_x=[("a", 4)])
        with pytest.raises(ValueError):
            execute_plan(plan, np.zeros((8, 9)), np.zeros((8, 8)))

    def test_5d_contraction(self):
        c = parse("abcde-efbad-cf",
                  {"a": 3, "b": 4, "c": 2, "d": 3, "e": 2, "f": 3})
        plan = make_plan(
            c, tb_x=[("a", 2)], tb_y=[("c", 2)], tb_k=[("f", 2)]
        )
        a, b = random_operands(c)
        assert np.allclose(execute_plan(plan, a, b),
                           reference_contract(c, a, b))


class TestVerifyPlan:
    def test_verify_good_plan(self):
        c = parse("ab-ak-kb", {"a": 8, "b": 8, "k": 8})
        plan = make_plan(c, tb_x=[("a", 4)], tb_y=[("b", 4)],
                         tb_k=[("k", 4)])
        assert verify_plan(plan)

    def test_verify_single_precision_plan(self):
        c = parse("ab-ak-kb", {"a": 8, "b": 8, "k": 8})
        plan = make_plan(
            c, dtype_bytes=4, tb_x=[("a", 4)], tb_y=[("b", 4)],
        )
        assert verify_plan(plan)
