"""Tests for the warp-level simulator (repro.gpu.warpsim)."""

import pytest

from repro.core.mapping import config_from_spec
from repro.core.parser import parse
from repro.core.plan import KernelPlan
from repro.gpu.simulator import GpuSimulator
from repro.gpu.warpsim import (
    BAR,
    FMA,
    GLD,
    GST,
    SLD,
    WarpLevelSimulator,
    default_pipes,
    warp_streams,
)


def make_plan(c, **spec):
    return KernelPlan(c, config_from_spec(c, **spec))


@pytest.fixture
def plan():
    c = parse("abcd-aebf-dfce", 32)
    return make_plan(
        c,
        tb_x=[("a", 16)], tb_y=[("d", 16)],
        reg_x=[("b", 4)], reg_y=[("c", 4)],
        tb_k=[("e", 8)],
    )


class TestStreams:
    def test_stream_shape(self, plan):
        stream = warp_streams(plan, steps=1)
        kinds = [i.kind for i in stream]
        assert kinds.count(GST) == plan.reg_x * plan.reg_y
        assert kinds.count(BAR) == 2
        assert kinds.count(FMA) == plan.tb_k_tile * plan.reg_x * plan.reg_y
        assert kinds.count(SLD) == plan.tb_k_tile * (
            plan.reg_x + plan.reg_y
        )

    def test_gld_count_matches_cooperative_loads(self, plan):
        from repro.core.plan import ceil_div

        stream = warp_streams(plan, steps=1)
        kinds = [i.kind for i in stream]
        expected = sum(
            ceil_div(
                plan.loads_per_thread(t), plan.staging_vector_width(t)
            )
            for t in (plan.contraction.a, plan.contraction.b)
        )
        assert kinds.count(GLD) == expected

    def test_barrier_depends_on_loads(self, plan):
        stream = warp_streams(plan, steps=1)
        first_bar = next(i for i in stream if i.kind == BAR)
        assert first_bar.depends_on == GLD

    def test_fma_after_sld_is_dependent(self, plan):
        stream = warp_streams(plan, steps=1)
        for pos, instr in enumerate(stream[:-1]):
            if instr.kind == SLD and stream[pos + 1].kind == FMA:
                assert stream[pos + 1].depends_on == SLD
                break
        else:
            pytest.fail("no SLD->FMA boundary found")

    def test_steps_scale_stream(self, plan):
        one = len(warp_streams(plan, 1))
        two = len(warp_streams(plan, 2))
        gst = plan.reg_x * plan.reg_y
        assert two - gst == 2 * (one - gst)


class TestPipes:
    def test_dp_slower_than_sp(self, v100):
        dp = default_pipes(v100, 8)
        sp = default_pipes(v100, 4)
        assert dp[FMA].initiation_interval > sp[FMA].initiation_interval
        assert dp[SLD].initiation_interval > sp[SLD].initiation_interval

    def test_dram_pipe_reflects_bandwidth(self, v100, p100):
        fast = default_pipes(v100, 8)[GLD].initiation_interval
        # P100 has fewer SMs sharing less bandwidth; per-SM share is
        # similar, but the pipes must be positive and finite.
        slow = default_pipes(p100, 8)[GLD].initiation_interval
        assert fast > 0 and slow > 0


class TestSimulation:
    def test_result_fields(self, plan, v100):
        result = WarpLevelSimulator(v100).simulate(plan)
        assert result.time_s > 0
        assert result.gflops > 0
        assert result.resident_warps >= 1
        assert result.waves >= 1

    def test_unrunnable_raises(self, v100):
        c = parse("ab-ak-kb", {"a": 2048, "b": 64, "k": 2048})
        plan = make_plan(
            c, tb_x=[("a", 2048)], tb_y=[("b", 1)], tb_k=[("k", 4)]
        )
        with pytest.raises(ValueError):
            WarpLevelSimulator(v100).simulate(plan)

    def test_sp_faster_than_dp(self, v100):
        c = parse("abcd-aebf-dfce", 32)
        cfg = config_from_spec(
            c, tb_x=[("a", 16)], tb_y=[("d", 16)],
            reg_x=[("b", 4)], reg_y=[("c", 4)], tb_k=[("e", 8)],
        )
        sim = WarpLevelSimulator(v100)
        dp = sim.simulate(KernelPlan(c, cfg, 8))
        sp = sim.simulate(KernelPlan(c, cfg, 4))
        assert sp.time_s < dp.time_s

    def test_register_tiling_helps(self, v100):
        c = parse("abcd-aebf-dfce", 64)
        no_reg = make_plan(
            c, tb_x=[("a", 16)], tb_y=[("d", 16)], tb_k=[("e", 8)]
        )
        with_reg = make_plan(
            c, tb_x=[("a", 16)], tb_y=[("d", 16)],
            reg_x=[("b", 4)], reg_y=[("c", 4)], tb_k=[("e", 8)],
        )
        sim = WarpLevelSimulator(v100)
        assert sim.simulate(with_reg).time_s < sim.simulate(no_reg).time_s

    def test_agrees_with_analytical_simulator(self, plan, v100):
        """The two independent execution models must land within a
        small constant factor of each other."""
        warp = WarpLevelSimulator(v100).simulate(plan)
        analytic = GpuSimulator(v100).simulate(plan)
        ratio = analytic.gflops / warp.gflops
        assert 1 / 3 <= ratio <= 3

    def test_deterministic(self, plan, v100):
        sim = WarpLevelSimulator(v100)
        assert sim.simulate(plan).time_s == sim.simulate(plan).time_s
