"""Tests for the contraction IR (repro.core.ir)."""

import math

import pytest

from repro.core.ir import (
    Contraction,
    ContractionError,
    IndexKind,
    TensorRef,
    column_major_strides,
    make_contraction,
)


class TestTensorRef:
    def test_fvi_is_first_index(self):
        t = TensorRef("A", ("a", "e", "b", "f"))
        assert t.fvi == "a"

    def test_svi_is_last_index(self):
        t = TensorRef("A", ("a", "e", "b", "f"))
        assert t.svi == "f"

    def test_ndim(self):
        assert TensorRef("A", ("x", "y", "z")).ndim == 3

    def test_position(self):
        t = TensorRef("A", ("a", "e", "b"))
        assert t.position("b") == 2

    def test_position_missing_raises(self):
        t = TensorRef("A", ("a", "b"))
        with pytest.raises(ContractionError):
            t.position("z")

    def test_contains(self):
        t = TensorRef("A", ("a", "b"))
        assert "a" in t
        assert "z" not in t

    def test_repeated_index_rejected(self):
        with pytest.raises(ContractionError):
            TensorRef("A", ("a", "a"))

    def test_empty_indices_rejected(self):
        with pytest.raises(ContractionError):
            TensorRef("A", ())

    def test_empty_name_rejected(self):
        with pytest.raises(ContractionError):
            TensorRef("", ("a",))

    def test_str(self):
        assert str(TensorRef("A", ("a", "b"))) == "A[a,b]"


class TestStrides:
    def test_column_major_first_fastest(self):
        assert column_major_strides((4, 5, 6)) == (1, 4, 20)

    def test_single_dim(self):
        assert column_major_strides((7,)) == (1,)

    def test_empty(self):
        assert column_major_strides(()) == ()


def _eq1(sizes=16):
    if isinstance(sizes, int):
        sizes = {i: sizes for i in "abcdef"}
    return make_contraction("abcd", "aebf", "dfce", sizes)


class TestClassification:
    def test_external_indices_in_output_order(self):
        c = _eq1()
        assert c.external_indices == ("a", "b", "c", "d")

    def test_internal_indices(self):
        c = _eq1()
        assert c.internal_indices == ("e", "f")

    def test_all_indices(self):
        c = _eq1()
        assert c.all_indices == ("a", "b", "c", "d", "e", "f")

    def test_kind_external(self):
        c = _eq1()
        assert c.kind("a") is IndexKind.EXTERNAL

    def test_kind_internal(self):
        c = _eq1()
        assert c.kind("e") is IndexKind.INTERNAL

    def test_kind_unknown_raises(self):
        with pytest.raises(ContractionError):
            _eq1().kind("z")

    def test_index_in_three_tensors_rejected(self):
        # 'a' appears in C, A and B.
        with pytest.raises(ContractionError):
            make_contraction("ab", "ak", "ka", {"a": 4, "b": 4, "k": 4})

    def test_index_in_one_tensor_rejected(self):
        with pytest.raises(ContractionError):
            make_contraction("abz", "ak", "kb",
                             {"a": 4, "b": 4, "k": 4, "z": 4})

    def test_missing_size_rejected(self):
        with pytest.raises(ContractionError):
            make_contraction("ab", "ak", "kb", {"a": 4, "b": 4})

    def test_nonpositive_size_rejected(self):
        with pytest.raises(ContractionError):
            make_contraction("ab", "ak", "kb", {"a": 4, "b": 4, "k": 0})


class TestReuse:
    """Every index is a reuse direction for exactly one tensor (Sec. II)."""

    def test_internal_index_reuses_output(self):
        c = _eq1()
        assert c.reuse_tensor("e") == "C"
        assert c.reuse_tensor("f") == "C"

    def test_a_externals_reuse_b(self):
        c = _eq1()
        assert c.reuse_tensor("a") == "B"
        assert c.reuse_tensor("b") == "B"

    def test_b_externals_reuse_a(self):
        c = _eq1()
        assert c.reuse_tensor("c") == "A"
        assert c.reuse_tensor("d") == "A"

    def test_reuse_groups_partition_all_indices(self):
        c = _eq1()
        groups = c.reuse_groups()
        flattened = [i for idxs in groups.values() for i in idxs]
        assert sorted(flattened) == sorted(c.all_indices)

    def test_reuse_groups_eq1(self):
        groups = _eq1().reuse_groups()
        assert groups["C"] == ("e", "f")
        assert groups["B"] == ("a", "b")
        assert groups["A"] == ("c", "d")


class TestOrientation:
    def test_x_input_holds_output_fvi(self):
        c = _eq1()
        assert c.c.fvi in c.x_input
        assert c.x_input.name == "A"

    def test_y_input_is_other_input(self):
        c = _eq1()
        assert c.y_input.name == "B"

    def test_x_input_can_be_b(self):
        c = make_contraction("ab", "kb", "ak", {"a": 4, "b": 4, "k": 4})
        assert c.x_input.name == "B"
        assert c.y_input.name == "A"

    def test_externals_of_in_tensor_order(self):
        c = _eq1()
        assert c.externals_of(c.a) == ("a", "b")
        assert c.externals_of(c.b) == ("d", "c")


class TestGeometry:
    def test_extents_of(self):
        c = _eq1({"a": 2, "b": 3, "c": 4, "d": 5, "e": 6, "f": 7})
        assert c.extents_of(c.a) == (2, 6, 3, 7)

    def test_strides_of_column_major(self):
        c = _eq1({"a": 2, "b": 3, "c": 4, "d": 5, "e": 6, "f": 7})
        assert c.strides_of(c.a) == (1, 2, 12, 36)

    def test_num_elements(self):
        c = _eq1(4)
        assert c.num_elements(c.c) == 4 ** 4

    def test_flops_counts_mul_and_add(self):
        c = _eq1(4)
        assert c.flops == 2 * 4 ** 6

    def test_iteration_space(self):
        c = _eq1(3)
        assert c.iteration_space == 3 ** 6

    def test_arithmetic_intensity_positive(self):
        assert _eq1(8).arithmetic_intensity() > 0

    def test_with_sizes(self):
        c = _eq1(4).with_sizes({i: 8 for i in "abcdef"})
        assert c.extent("a") == 8

    def test_einsum_spec_round_trips_indices(self):
        c = _eq1()
        spec = c.einsum_spec()
        lhs, rhs = spec.split("->")
        a_sub, b_sub = lhs.split(",")
        assert len(a_sub) == 4 and len(b_sub) == 4 and len(rhs) == 4

    def test_outer_product_allowed(self):
        c = make_contraction("ab", "a", "b", {"a": 4, "b": 4})
        assert c.internal_indices == ()
        assert c.flops == 2 * 16

    def test_str_rendering(self):
        assert str(_eq1()) == "C[a,b,c,d] = A[a,e,b,f] * B[d,f,c,e]"
