"""Tests for kernel metric reports (repro.gpu.metrics)."""

import pytest

from repro import Cogent, parse
from repro.core.mapping import config_from_spec
from repro.core.plan import KernelPlan
from repro.gpu.metrics import collect_metrics, roofline_chart


@pytest.fixture(scope="module")
def metrics(v100=None):
    from repro.gpu.arch import VOLTA_V100

    kernel = Cogent(arch="V100", top_k=4).generate(
        "abcd-aebf-dfce", sizes=48
    )
    return collect_metrics(
        kernel.plan, VOLTA_V100,
        simulated=kernel.candidates[0].simulated,
    )


class TestMetrics:
    def test_efficiencies_bounded(self, metrics):
        assert 0 < metrics.flop_efficiency <= 1
        assert 0 < metrics.dram_utilization <= 1.01
        assert 0 < metrics.achieved_occupancy <= 1
        assert 0 < metrics.wave_efficiency <= 1

    def test_ridge_matches_arch(self, metrics, v100):
        assert metrics.ridge_intensity == pytest.approx(
            v100.peak_gflops_dp / v100.dram_bandwidth_gbs
        )

    def test_bound_consistent_with_intensity(self, metrics):
        # Compute-bound kernels should sit at/above the ridge point
        # (the converse need not hold due to occupancy effects).
        if metrics.bound == "fma":
            assert metrics.arithmetic_intensity > \
                metrics.ridge_intensity * 0.5

    def test_report_text(self, metrics):
        text = metrics.report()
        assert "achieved occupancy" in text
        assert "arithmetic intensity" in text
        assert "GFLOP/s" in text

    def test_memory_bound_kernel_detected(self, v100):
        # A one-index transform is strongly memory bound.
        c = parse("abcd-ebcd-ae", 64)
        plan = KernelPlan(
            c,
            config_from_spec(
                c, tb_x=[("a", 16)], tb_y=[("b", 16)], tb_k=[("e", 16)]
            ),
        )
        m = collect_metrics(plan, v100)
        assert m.bound == "dram"
        assert m.arithmetic_intensity < m.ridge_intensity


class TestRoofline:
    def test_chart_contains_roof_and_markers(self, metrics):
        chart = roofline_chart([metrics])
        assert "/" in chart   # bandwidth slope
        assert "_" in chart   # compute roof
        assert "1" in chart   # the kernel marker

    def test_multiple_kernels(self, metrics):
        # Identical kernels overprint the same cell: the last marker
        # wins; distinct kernels each get their own.
        chart = roofline_chart([metrics, metrics, metrics])
        assert "3" in chart

    def test_distinct_kernels_get_distinct_markers(self, metrics, v100):
        from repro.core.mapping import config_from_spec
        from repro.core.plan import KernelPlan
        from repro import parse

        c = parse("abcd-ebcd-ae", 64)
        plan = KernelPlan(
            c,
            config_from_spec(
                c, tb_x=[("a", 16)], tb_y=[("b", 16)], tb_k=[("e", 16)]
            ),
        )
        other = collect_metrics(plan, v100)
        chart = roofline_chart([metrics, other])
        assert "1" in chart and "2" in chart

    def test_empty_list(self):
        assert "no kernels" in roofline_chart([])
