"""Tests for the OpenCL backend: structure, and end-to-end execution of
the emitted kernel text through the pthread work-group harness."""

import numpy as np
import pytest

from repro.core.codegen import get_target
from repro.core.codegen.clemu import (
    compile_and_run_opencl,
    generate_opencl_harness,
)
from repro.core.mapping import config_from_spec
from repro.core.parser import parse
from repro.core.plan import KernelPlan
from repro.gpu.executor import random_operands, reference_contract

from .conftest import requires_cc


def generate_opencl_kernel(plan, kernel_name="tc_kernel"):
    return get_target("opencl").emit_kernel(plan, kernel_name)


@pytest.fixture
def plan(eq1_small):
    cfg = config_from_spec(
        eq1_small,
        tb_x=[("a", 4)], tb_y=[("d", 2)],
        reg_x=[("b", 2)], reg_y=[("c", 3)],
        tb_k=[("e", 2), ("f", 2)],
    )
    return KernelPlan(eq1_small, cfg)


class TestStructure:
    def test_kernel_qualifiers(self, plan):
        src = generate_opencl_kernel(plan)
        assert "__kernel void tc_kernel(" in src
        assert "__global double* restrict g_C" in src
        assert "__local double s_a" in src

    def test_barriers_replace_syncthreads(self, plan):
        src = generate_opencl_kernel(plan)
        assert src.count("barrier(CLK_LOCAL_MEM_FENCE);") == 2
        assert "__syncthreads" not in src

    def test_workgroup_size_attribute(self, plan):
        src = generate_opencl_kernel(plan)
        assert f"reqd_work_group_size({plan.tb_x}, {plan.tb_y}, 1)" in src

    def test_fp64_pragma_for_double(self, plan):
        src = generate_opencl_kernel(plan)
        assert "cl_khr_fp64" in src

    def test_no_fp64_pragma_for_float(self, eq1_small):
        cfg = config_from_spec(eq1_small, tb_x=[("a", 4)])
        src = generate_opencl_kernel(KernelPlan(eq1_small, cfg, 4))
        assert "cl_khr_fp64" not in src
        assert "float" in src

    def test_braces_balanced(self, plan):
        src = generate_opencl_kernel(plan)
        assert src.count("{") == src.count("}")

    def test_local_ids_used(self, plan):
        src = generate_opencl_kernel(plan)
        assert "get_local_id(0)" in src
        assert "get_local_id(1)" in src
        assert "get_group_id(0)" in src

    def test_harness_embeds_kernel(self, plan):
        harness = generate_opencl_harness(plan)
        assert "pthread_barrier_wait" in harness
        assert "__kernel" in harness
        assert "int main(" in harness


@requires_cc
class TestExecution:
    def test_eq1(self, plan, eq1_small):
        a, b = random_operands(eq1_small, seed=1)
        got = compile_and_run_opencl(plan, a, b)
        assert np.allclose(got, reference_contract(eq1_small, a, b))

    def test_matmul(self):
        c = parse("ab-ak-kb", {"a": 9, "b": 7, "k": 5})
        cfg = config_from_spec(
            c, tb_x=[("a", 4)], tb_y=[("b", 4)], tb_k=[("k", 4)]
        )
        plan = KernelPlan(c, cfg)
        a, b = random_operands(c, seed=2)
        got = compile_and_run_opencl(plan, a, b)
        assert np.allclose(got, a @ b)

    def test_single_precision(self):
        c = parse("abc-adc-bd", {"a": 6, "b": 5, "c": 4, "d": 3})
        cfg = config_from_spec(
            c, tb_x=[("a", 3)], tb_y=[("b", 2)], tb_k=[("d", 2)]
        )
        plan = KernelPlan(c, cfg, 4)
        a, b = random_operands(c, np.float32, seed=3)
        got = compile_and_run_opencl(plan, a, b)
        want = reference_contract(c, a, b)
        assert np.allclose(got, want, rtol=1e-4, atol=1e-4)

    def test_cuda_and_opencl_agree(self, plan, eq1_small):
        """The two GPU backends must produce identical schedules."""
        from repro.core.codegen.cemu import compile_and_run

        a, b = random_operands(eq1_small, seed=4)
        via_c = compile_and_run(plan, a, b)
        via_cl = compile_and_run_opencl(plan, a, b)
        assert np.allclose(via_c, via_cl)
