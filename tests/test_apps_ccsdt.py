"""Tests for the CCSD(T)-style triples driver (repro.apps.ccsdt)."""

import numpy as np
import pytest

from repro import Cogent
from repro.apps.ccsdt import TriplesDriver, triples_terms
from repro.core.parser import parse_compact


@pytest.fixture(scope="module")
def driver():
    return TriplesDriver(
        n_occupied=4, n_virtual=5,
        generator=Cogent(arch="V100", top_k=4), seed=3,
    )


class TestTerms:
    def test_eighteen_terms(self):
        terms = triples_terms()
        assert len(terms) == 18
        assert sum(1 for t in terms if t.family == "d1") == 9

    def test_terms_match_tccg_suite(self):
        from repro.tccg import by_group

        suite_exprs = [b.expr for b in by_group("ccsd_t")]
        assert [t.expr for t in triples_terms()] == suite_exprs

    def test_signs_alternate(self):
        signs = [t.sign for t in triples_terms()]
        assert set(signs) == {-1, 1}
        # The parity pattern is balanced across each family of nine:
        # two sign groups of sizes 4/5 (3x3 parity grid).
        d1_signs = signs[:9]
        assert sorted((d1_signs.count(1), d1_signs.count(-1))) == [4, 5]

    def test_every_term_is_valid_contraction(self, driver):
        for term in driver.terms:
            c = parse_compact(term.expr, driver.sizes_for(term))
            assert c.c.ndim == 6

    def test_d1_contracts_over_occupied(self, driver):
        d1 = next(t for t in driver.terms if t.family == "d1")
        assert driver.sizes_for(d1)["g"] == driver.no

    def test_d2_contracts_over_virtual(self, driver):
        d2 = next(t for t in driver.terms if t.family == "d2")
        assert driver.sizes_for(d2)["g"] == driver.nv


class TestEvaluation:
    def test_kernels_match_einsum_reference(self, driver):
        via_kernels = driver.residual(use_kernels=True)
        via_einsum = driver.residual(use_kernels=False)
        assert np.allclose(via_kernels, via_einsum)

    def test_energy_matches_reference(self, driver):
        result = driver.energy()
        assert result.energy == pytest.approx(driver.reference_energy(),
                                              rel=1e-12)

    def test_energy_is_negative(self, driver):
        # Denominators are strictly negative (occupied below virtual),
        # so the correction E = sum t3^2 / D must be negative.
        assert driver.energy().energy < 0

    def test_denominators_strictly_negative(self, driver):
        assert (driver.denominators() < 0).all()

    def test_deterministic_for_seed(self):
        gen = Cogent(arch="V100", top_k=1)
        e1 = TriplesDriver(4, 4, generator=gen, seed=7).energy().energy
        e2 = TriplesDriver(4, 4, generator=gen, seed=7).energy().energy
        assert e1 == e2

    def test_different_seeds_differ(self):
        gen = Cogent(arch="V100", top_k=1)
        e1 = TriplesDriver(4, 4, generator=gen, seed=1).energy().energy
        e2 = TriplesDriver(4, 4, generator=gen, seed=2).energy().energy
        assert e1 != e2

    def test_kernels_cached(self, driver):
        k1 = driver.kernel_for(driver.terms[0])
        k2 = driver.kernel_for(driver.terms[0])
        assert k1 is k2

    def test_predicted_time_positive(self, driver):
        result = driver.energy()
        assert result.predicted_time_s > 0
        assert len(result.per_term_gflops) == 18

    def test_report_mentions_all_terms(self, driver):
        text = driver.report()
        assert "E(T)" in text
        assert text.count("sd_t_d1") == 9
        assert text.count("sd_t_d2") == 9
