"""Fuzz tests: arbitrary input must either parse cleanly or raise the
library's own error types — never crash with an unrelated exception."""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ir import ContractionError
from repro.core.parser import parse, parse_size_spec

_ACCEPTABLE = (ContractionError,)


@given(st.text(max_size=40))
@settings(max_examples=200, deadline=None)
def test_parse_never_crashes_unexpectedly(text):
    try:
        contraction = parse(text, 4)
    except _ACCEPTABLE:
        return
    # If it parsed, the result must be a structurally valid contraction.
    for idx in contraction.all_indices:
        assert contraction.kind(idx) is not None


@given(
    st.text(alphabet=string.ascii_lowercase + "-", max_size=24)
)
@settings(max_examples=200, deadline=None)
def test_compactish_strings(text):
    try:
        contraction = parse(text, 4)
    except _ACCEPTABLE:
        return
    assert contraction.flops > 0


@given(st.text(max_size=30))
@settings(max_examples=150, deadline=None)
def test_size_spec_never_crashes_unexpectedly(text):
    try:
        spec = parse_size_spec(text)
    except _ACCEPTABLE:
        return
    assert spec is None or isinstance(spec, (int, dict))


@given(
    st.lists(
        st.sampled_from(string.ascii_lowercase), min_size=1, max_size=6,
        unique=True,
    ),
    st.integers(-5, 5),
)
@settings(max_examples=100, deadline=None)
def test_extents_validated(indices, extent):
    expr = "".join(indices)
    # Same index string on both sides -> elementwise-like; invalid
    # (each index would appear in 3 tensors), so focus on sizes only
    # with a valid matmul-shaped expression.
    try:
        parse("ab-ak-kb", {"a": extent, "b": 4, "k": 4})
    except _ACCEPTABLE:
        assert extent < 1
        return
    assert extent >= 1
