"""Tests for the terminal figure renderings (repro.evaluation.plots)."""

import pytest

from repro.evaluation.plots import grouped_bars, hbar, line_plot
from repro.evaluation.runner import ComparisonRow, FrameworkResult
from repro.tccg import get


def make_row(name, values):
    bench = get(name)
    row = ComparisonRow(bench)
    for fw, gflops in values.items():
        row.results[fw] = FrameworkResult(
            framework=fw, benchmark=name, gflops=gflops,
            time_s=1.0 / max(gflops, 1e-9),
        )
    return row


class TestHbar:
    def test_full_scale(self):
        assert len(hbar(10, 10, 20)) == 20

    def test_half(self):
        assert len(hbar(5, 10, 20)) == 10

    def test_zero(self):
        assert hbar(0, 10, 20) == ""

    def test_zero_scale(self):
        assert hbar(5, 0, 20) == ""


class TestGroupedBars:
    @pytest.fixture
    def rows(self):
        return [
            make_row("ccsd_eq1", {"cogent": 6000.0, "talsh": 5000.0}),
            make_row("sd_t_d2_1", {"cogent": 1500.0, "talsh": 300.0}),
        ]

    def test_contains_all_series(self, rows):
        text = grouped_bars(rows, ("cogent", "talsh"), title="demo")
        assert "demo" in text
        assert "ccsd_eq1" in text and "sd_t_d2_1" in text
        assert text.count("cogent") == 2

    def test_bar_lengths_ordered(self, rows):
        text = grouped_bars(rows, ("cogent", "talsh"), width=40)
        lines = [l for l in text.splitlines() if "cogent" in l or
                 "talsh" in l]
        lengths = [l.count("█") for l in lines]
        # cogent(6000) > talsh(5000) > cogent(1500) > talsh(300)
        assert lengths == sorted(lengths, reverse=True)


class TestLinePlot:
    def test_contains_axes_and_legend(self):
        text = line_plot(
            {"tc tuned": [1, 10, 50, 100, 120]},
            hlines={"cogent": 200.0},
        )
        assert "GFLOPS" in text
        assert "tc tuned" in text
        assert "cogent" in text
        assert "-" in text  # reference line rendered

    def test_monotone_series_rises(self):
        text = line_plot({"s": [0, 25, 50, 75, 100]}, height=6, width=20)
        rows = [l.split("|", 1)[1] for l in text.splitlines()
                if "|" in l]
        first_col = [r[0] for r in rows]
        last_col = [r[-1] for r in rows]
        # The marker starts near the bottom and ends near the top.
        assert first_col.index("*") > last_col.index("*")

    def test_empty_series_tolerated(self):
        text = line_plot({"empty": []}, hlines={"ref": 5.0})
        assert "ref" in text
