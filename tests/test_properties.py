"""Property-based tests (hypothesis) over randomly generated
contractions and configurations.

These exercise the structural invariants the whole system rests on:
index classification, tiling decomposition correctness, cost-model /
address-trace consistency, and split/merge round-trips.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.costmodel import CostModel
from repro.core.ir import Contraction, IndexKind, TensorRef
from repro.core.mapping import config_from_spec
from repro.core.plan import KernelPlan, decompose
from repro.core.splitting import merge_output, split_operand
from repro.gpu.executor import (
    execute_plan,
    random_operands,
    reference_contract,
)
from repro.gpu.memory import (
    VectorizedReplay,
    count_transactions,
    count_transactions_reference,
    sampled_is_exact,
)

# -- strategies -------------------------------------------------------------

ALPHABET = "abcdefgh"


@st.composite
def contractions(draw, max_ext=3, max_int=2, max_extent=6):
    """Random valid binary contractions with bound extents."""
    n_ext_a = draw(st.integers(1, max_ext))
    n_ext_b = draw(st.integers(0, max_ext - 1))
    n_int = draw(st.integers(0 if n_ext_b else 1, max_int))
    names = list(ALPHABET[: n_ext_a + n_ext_b + n_int])
    ext_a = names[:n_ext_a]
    ext_b = names[n_ext_a:n_ext_a + n_ext_b]
    ints = names[n_ext_a + n_ext_b:]

    def shuffle(items):
        items = list(items)
        perm = draw(st.permutations(items)) if len(items) > 1 else items
        return list(perm)

    a_indices = shuffle(ext_a + ints)
    b_indices = shuffle(ext_b + ints)
    c_indices = shuffle(ext_a + ext_b)
    if not b_indices:
        b_indices = ints
    sizes = {
        name: draw(st.integers(1, max_extent)) for name in names
    }
    return Contraction(
        c=TensorRef("C", tuple(c_indices)),
        a=TensorRef("A", tuple(a_indices)),
        b=TensorRef("B", tuple(b_indices)),
        sizes=sizes,
    )


@st.composite
def planned_contractions(draw):
    """A contraction plus a random legal configuration for it."""
    c = draw(contractions())

    def tile_for(index):
        return draw(st.integers(1, c.extent(index)))

    x_ext = list(c.externals_of(c.x_input))
    y_ext = list(c.externals_of(c.y_input))
    spec = {"tb_x": [], "tb_y": [], "reg_x": [], "reg_y": [], "tb_k": []}
    for index in x_ext:
        where = draw(st.sampled_from(["tb_x", "reg_x", "grid"]))
        if where != "grid":
            spec[where].append((index, tile_for(index)))
    for index in y_ext:
        where = draw(st.sampled_from(["tb_y", "reg_y", "grid"]))
        if where != "grid":
            spec[where].append((index, tile_for(index)))
    for index in c.internal_indices:
        spec["tb_k"].append((index, tile_for(index)))
    config = config_from_spec(c, **spec)
    return KernelPlan(c, config)


# -- invariants -------------------------------------------------------------


@given(contractions())
@settings(max_examples=60, deadline=None)
def test_every_index_in_exactly_two_tensors(c):
    for idx in c.all_indices:
        count = sum(idx in t for t in (c.c, c.a, c.b))
        assert count == 2


@given(contractions())
@settings(max_examples=60, deadline=None)
def test_reuse_groups_partition(c):
    groups = c.reuse_groups()
    flat = sorted(i for idxs in groups.values() for i in idxs)
    assert flat == sorted(c.all_indices)
    # Internal indices are always reuse directions for the output.
    for idx in c.internal_indices:
        assert idx in groups[c.c.name]


@given(contractions())
@settings(max_examples=60, deadline=None)
def test_flops_is_twice_iteration_space(c):
    assert c.flops == 2 * c.iteration_space


@given(contractions())
@settings(max_examples=40, deadline=None)
def test_einsum_spec_agrees_with_manual_loops(c):
    a, b = random_operands(c, seed=3)
    got = reference_contract(c, a, b)
    assert got.shape == c.extents_of(c.c)


@given(planned_contractions())
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_tiled_execution_matches_einsum(plan):
    """The central correctness property: any legal mapping/tiling of any
    contraction computes exactly the einsum result."""
    c = plan.contraction
    a, b = random_operands(c, seed=1)
    got = execute_plan(plan, a, b)
    want = reference_contract(c, a, b)
    assert np.allclose(got, want, rtol=1e-9, atol=1e-9)


@given(planned_contractions())
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_blocks_cover_output_exactly_once(plan):
    c = plan.contraction
    coverage = np.zeros(c.extents_of(c.c), dtype=int)
    for blk in range(plan.num_blocks):
        offs = plan.block_offsets(blk)
        slices = tuple(
            slice(offs[i], min(offs[i] + plan.tile_of(i), c.extent(i)))
            for i in c.c.indices
        )
        coverage[slices] += 1
    assert (coverage == 1).all()


@given(planned_contractions())
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_cost_model_and_trace_within_bounded_ratio(plan):
    """The analytic model and the replayed addresses may differ (edge
    tiles, misalignment, tiny rows) but must stay within a constant
    factor on these small problems."""
    measured = count_transactions(plan, exact=True)
    model = CostModel(plan.dtype_bytes).estimate(plan)
    assert measured.total > 0
    assert model.total > 0
    ratio = model.total / measured.total
    assert 1 / 8 <= ratio <= 8


@given(planned_contractions(), st.sampled_from([4, 8]))
@settings(max_examples=50, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_vectorized_replay_equals_loop_reference(plan, dtype_bytes):
    """Property (issue satellite): the batched equivalence-class replay
    produces bit-for-bit the loads (A and B) and stores (C) of the
    retained per-(block, step) loop oracle, for any legal plan —
    including non-divisible boundary tiles — and both dtype widths."""
    plan = KernelPlan(plan.contraction, plan.config, dtype_bytes)
    vectorized = VectorizedReplay(plan).count()
    reference = count_transactions_reference(plan)
    assert vectorized.load_a == reference.load_a
    assert vectorized.load_b == reference.load_b
    assert vectorized.store_c == reference.store_c


@given(planned_contractions())
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_sampled_is_exact_predicate_is_sound(plan):
    """Whenever the divisibility/alignment predicate promises the
    sampled estimate is exact, it must actually equal the full replay
    (``exact="auto"`` relies on this)."""
    if sampled_is_exact(plan):
        assert count_transactions(plan, exact=False) == \
            count_transactions(plan, exact=True)
    assert count_transactions(plan, exact="auto") == \
        count_transactions(plan, exact=True)


@given(
    st.integers(1, 6).flatmap(
        lambda f: st.tuples(st.just(f), st.integers(1, 5))
    ),
    st.integers(0, 2),
)
@settings(max_examples=40, deadline=None)
def test_split_merge_roundtrip(fq, extra_axes):
    factor, quotient = fq
    shape = [factor * quotient] + [2] * extra_axes
    arr = np.arange(math.prod(shape), dtype=float).reshape(shape)
    if factor == 1 or quotient == 1:
        return  # split_index would reject; operand helper still works
    split = split_operand(arr, 0, factor)
    merged = merge_output(split, 0)
    assert np.array_equal(merged, arr)


@given(st.integers(0, 1000), st.lists(st.integers(1, 7), min_size=1,
                                      max_size=4))
@settings(max_examples=60, deadline=None)
def test_decompose_is_mixed_radix_inverse(flat, sizes):
    total = math.prod(sizes)
    flat = flat % total
    coords = decompose(flat, sizes)
    back = 0
    scale = 1
    for coord, size in zip(coords, sizes):
        back += coord * scale
        scale *= size
    assert back == flat


_SHARED_COST_MODEL = CostModel()


@given(st.lists(planned_contractions(), min_size=1, max_size=4))
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_memoized_cost_model_equals_fresh(plans):
    """Property (issue satellite): estimates served through a shared,
    memo-accumulating cost model are identical to freshly computed
    ``TransactionEstimate``s, for any plan sequence and both clipping
    modes."""
    for plan in plans:
        for clipped in (False, True):
            shared = _SHARED_COST_MODEL.estimate(plan, clipped)
            fresh = CostModel(plan.dtype_bytes).estimate(plan, clipped)
            assert shared == fresh
    info = _SHARED_COST_MODEL.memo_info()
    assert info["hits"] + info["misses"] >= 3 * len(plans)
