"""Tests for the Cogent facade (repro.core.generator)."""

import pytest

from repro import Cogent, parse
from repro.core.generator import GeneratedKernel
from repro.gpu.executor import verify_plan


class TestGenerate:
    def test_returns_generated_kernel(self, cogent_v100, eq1_repr):
        kernel = cogent_v100.generate(eq1_repr)
        assert isinstance(kernel, GeneratedKernel)
        assert kernel.plan.contraction is kernel.contraction

    def test_accepts_expression_string(self, cogent_v100):
        kernel = cogent_v100.generate("ab-ak-kb", sizes=64)
        assert kernel.contraction.internal_indices == ("k",)

    def test_best_plan_is_numerically_correct(self, cogent_v100):
        c = parse("abcd-aebf-dfce",
                  {"a": 6, "b": 5, "c": 4, "d": 6, "e": 3, "f": 2})
        kernel = cogent_v100.generate(c)
        assert verify_plan(kernel.plan)

    def test_candidates_sorted_by_selection_metric(self, cogent_v100,
                                                   eq1_repr):
        kernel = cogent_v100.generate(eq1_repr)
        head = [c for c in kernel.candidates if c.simulated is not None]
        times = [c.simulated.time_s for c in head]
        assert times == sorted(times)

    def test_generation_time_recorded(self, cogent_v100, eq1_repr):
        kernel = cogent_v100.generate(eq1_repr)
        assert kernel.generation_time_s > 0

    def test_cost_is_top_candidate_cost(self, cogent_v100, eq1_repr):
        kernel = cogent_v100.generate(eq1_repr)
        assert kernel.cost == kernel.candidates[0].cost

    def test_summary_contains_search_stats(self, cogent_v100, eq1_repr):
        text = cogent_v100.generate(eq1_repr).summary()
        assert "pruned" in text
        assert "DRAM transactions" in text


class TestSelectionModes:
    def test_pure_model_mode(self, eq1_repr):
        gen = Cogent(arch="V100", top_k=1, allow_split=False)
        kernel = gen.generate(eq1_repr)
        assert kernel.selection_mode == "cost-model"

    def test_microbench_mode(self, eq1_repr):
        gen = Cogent(arch="V100", top_k=8, allow_split=False)
        kernel = gen.generate(eq1_repr)
        assert kernel.selection_mode == "model+microbench"

    def test_microbench_never_worse_than_model_only(self, eq1_repr):
        model_only = Cogent(arch="V100", top_k=1, allow_split=False)
        micro = Cogent(arch="V100", top_k=32, allow_split=False)
        k1 = model_only.generate(eq1_repr)
        k32 = micro.generate(eq1_repr)
        t1 = model_only.predict(k1.plan).time_s
        t32 = micro.predict(k32.plan).time_s
        assert t32 <= t1 + 1e-12


class TestFallbacks:
    def test_tiny_problem_still_generates(self, cogent_v100):
        kernel = cogent_v100.generate("ab-ak-kb", sizes=4)
        assert kernel.plan.num_blocks >= 1
        assert verify_plan(kernel.plan)

    def test_outer_product_generates(self, cogent_v100):
        kernel = cogent_v100.generate("ab-a-b", sizes=64)
        assert kernel.plan.num_steps == 1

    def test_high_dimensional(self, cogent_v100):
        kernel = cogent_v100.generate("abcdef-gdab-efgc", sizes=8)
        assert kernel.contraction.internal_indices == ("g",)


class TestSources:
    def test_cuda_source_cached(self, cogent_v100, eq1_repr):
        kernel = cogent_v100.generate(eq1_repr)
        assert kernel.source("cuda") is kernel.source("cuda")

    def test_default_target_is_cuda(self, cogent_v100, eq1_repr):
        kernel = cogent_v100.generate(eq1_repr)
        assert kernel.target == "cuda"
        assert kernel.source() == kernel.source("cuda")

    def test_driver_source_contains_kernel(self, cogent_v100, eq1_repr):
        kernel = cogent_v100.generate(eq1_repr)
        assert "tc_kernel" in kernel.driver_source("cuda")

    def test_c_emulation_source(self, cogent_v100, eq1_repr):
        kernel = cogent_v100.generate(eq1_repr)
        assert "tc_kernel_emu" in kernel.source("cemu")


class TestRankAndPredict:
    def test_rank_configs_nonempty(self, cogent_v100, eq1_repr):
        ranked = cogent_v100.rank_configs(eq1_repr)
        assert ranked
        costs = [cost for _, cost in ranked]
        assert costs == sorted(costs)

    def test_estimate_and_predict(self, cogent_v100, eq1_repr):
        kernel = cogent_v100.generate(eq1_repr)
        est = cogent_v100.estimate(kernel.plan)
        sim = cogent_v100.predict(kernel.plan)
        assert est.total > 0
        assert sim.gflops > 0

    def test_best_config_beats_median_by_model(self, cogent_v100,
                                               eq1_repr):
        ranked = cogent_v100.rank_configs(eq1_repr)
        best_cost = ranked[0][1]
        median_cost = ranked[len(ranked) // 2][1]
        assert best_cost <= median_cost


class TestDtype:
    def test_single_precision_generator(self, eq1_repr):
        gen = Cogent(arch="V100", dtype_bytes=4)
        kernel = gen.generate(eq1_repr)
        assert "float" in kernel.source("cuda")
        assert verify_plan(kernel.plan)

    def test_archs_rank_as_expected_at_scale(self):
        # At small sizes launch/sync overheads can blur the ordering;
        # at benchmark scale the V100 must come out ahead.
        c = parse("abcd-aebf-dfce", 48)
        kv = Cogent(arch="V100").generate(c)
        kp = Cogent(arch="P100").generate(c)
        assert kv.candidates[0].simulated.gflops > \
            kp.candidates[0].simulated.gflops
