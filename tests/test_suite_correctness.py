"""Suite-wide correctness: every TCCG contraction, scaled down, runs
through generation + schedule execution and matches numpy.einsum."""

import numpy as np
import pytest

from repro import Cogent
from repro.core.parser import parse_compact
from repro.gpu.executor import random_operands, reference_contract
from repro.tccg import all_benchmarks


@pytest.fixture(scope="module")
def generator():
    # Small problems: skip the microbenchmark and split search for speed.
    return Cogent(arch="V100", top_k=1, allow_split=False)


def _shrunk(bench, cap=6):
    sizes = {k: min(v, cap) for k, v in bench.sizes.items()}
    return parse_compact(bench.expr, sizes)


@pytest.mark.parametrize(
    "bench", all_benchmarks(), ids=lambda b: b.name
)
def test_generated_schedule_matches_einsum(bench, generator):
    contraction = _shrunk(bench)
    kernel = generator.generate(contraction)
    a, b = random_operands(contraction, seed=bench.id)
    got = kernel.execute(a, b)
    want = reference_contract(contraction, a, b)
    assert np.allclose(got, want, rtol=1e-9, atol=1e-9), bench.expr
