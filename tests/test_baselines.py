"""Tests for the NWChem and naive baselines (repro.baselines)."""

import numpy as np
import pytest

from repro.baselines.naive import contract_loops, contract_tensordot
from repro.baselines.nwchem import NwchemGenerator
from repro.core.mapping import Dim
from repro.core.parser import parse
from repro.gpu.executor import (
    execute_plan,
    random_operands,
    reference_contract,
    verify_plan,
)


class TestNwchem:
    def test_generates_feasible_plan(self, v100, eq1_repr):
        plan = NwchemGenerator(v100).generate(eq1_repr)
        plan.config.validate_for(eq1_repr)
        assert plan.smem_bytes <= v100.shared_mem_per_block

    def test_16x16_block_shape(self, v100, eq1_repr):
        plan = NwchemGenerator(v100).generate(eq1_repr)
        assert plan.tb_x == 16
        assert plan.tb_y == 16

    def test_output_fvi_leads_tbx(self, v100, eq1_repr):
        plan = NwchemGenerator(v100).generate(eq1_repr)
        assert plan.config.indices_on(Dim.TB_X)[0] == eq1_repr.c.fvi

    def test_deterministic(self, v100, eq1_repr):
        g = NwchemGenerator(v100)
        assert g.generate(eq1_repr).config.describe() == \
            g.generate(eq1_repr).config.describe()

    def test_numerically_correct(self, v100):
        c = parse("abcd-aebf-dfce",
                  {"a": 6, "b": 4, "c": 5, "d": 6, "e": 3, "f": 2})
        plan = NwchemGenerator(v100).generate(c)
        assert verify_plan(plan)

    def test_shrinks_tbk_when_smem_tight(self, v100):
        # Huge extents force the feasibility fallback loop to engage.
        c = parse("abcd-aebf-dfce", 512)
        plan = NwchemGenerator(v100).generate(c)
        assert plan.smem_bytes <= v100.shared_mem_per_block

    def test_ccsdt_kernel(self, v100):
        c = parse("abcdef-gdab-efgc", 24)
        plan = NwchemGenerator(v100).generate(c)
        assert plan.threads_per_block == 256

    def test_internal_fvi_staged_first(self, v100):
        # B's FVI is internal ('f'): NWChem leads TB_k with it.
        c = parse("abcd-aefb-fced", 64)
        plan = NwchemGenerator(v100).generate(c)
        assert plan.config.indices_on(Dim.TB_K)[0] == "f"


class TestNaive:
    @pytest.fixture
    def small(self):
        return parse("abc-adc-bd", {"a": 3, "b": 4, "c": 2, "d": 3})

    def test_loops_match_einsum(self, small):
        a, b = random_operands(small)
        assert np.allclose(contract_loops(small, a, b),
                           reference_contract(small, a, b))

    def test_tensordot_matches_einsum(self, small):
        a, b = random_operands(small)
        assert np.allclose(contract_tensordot(small, a, b),
                           reference_contract(small, a, b))

    def test_tensordot_on_eq1(self, eq1_small):
        a, b = random_operands(eq1_small)
        assert np.allclose(contract_tensordot(eq1_small, a, b),
                           reference_contract(eq1_small, a, b))

    def test_loops_outer_product(self):
        c = parse("ab-a-b", {"a": 3, "b": 2})
        a, b = random_operands(c)
        assert np.allclose(contract_loops(c, a, b), np.outer(a, b))

    def test_three_oracles_agree(self, small):
        """einsum, nested loops and tensordot are independent paths."""
        a, b = random_operands(small)
        r1 = reference_contract(small, a, b)
        r2 = contract_loops(small, a, b)
        r3 = contract_tensordot(small, a, b)
        assert np.allclose(r1, r2)
        assert np.allclose(r2, r3)
