"""Edge-case and robustness tests across the pipeline."""

import numpy as np
import pytest

from repro import Cogent, parse, verify_plan
from repro.core.mapping import config_from_spec
from repro.core.plan import KernelPlan
from repro.gpu.executor import (
    execute_plan,
    random_operands,
    reference_contract,
)


@pytest.fixture(scope="module")
def gen():
    return Cogent(arch="V100", top_k=2, allow_split=False)


class TestExtentOne:
    def test_unit_extent_internal(self, gen):
        c = parse("ab-ak-kb", {"a": 8, "b": 8, "k": 1})
        kernel = gen.generate(c)
        assert verify_plan(kernel.plan)

    def test_unit_extent_external(self, gen):
        c = parse("ab-ak-kb", {"a": 1, "b": 16, "k": 8})
        kernel = gen.generate(c)
        assert verify_plan(kernel.plan)

    def test_all_unit_extents(self, gen):
        c = parse("ab-ak-kb", {"a": 1, "b": 1, "k": 1})
        kernel = gen.generate(c)
        a, b = random_operands(c)
        got = execute_plan(kernel.plan, a, b)
        assert np.allclose(got, a @ b)

    def test_unit_extent_in_middle_of_tensor(self, gen):
        c = parse("abcd-aebf-dfce",
                  {"a": 6, "b": 1, "c": 5, "d": 4, "e": 1, "f": 3})
        kernel = gen.generate(c)
        assert verify_plan(kernel.plan)


class TestExtremeShapes:
    def test_very_skewed_extents(self, gen):
        c = parse("ab-ak-kb", {"a": 512, "b": 2, "k": 3})
        kernel = gen.generate(c)
        assert verify_plan(kernel.plan)

    def test_long_contraction_short_externals(self, gen):
        c = parse("ab-ak-kb", {"a": 4, "b": 4, "k": 1024})
        kernel = gen.generate(c)
        assert verify_plan(kernel.plan)

    def test_huge_extents_dont_overflow_planning(self, gen):
        # Planning and modelling only (no execution): strides exceed
        # 32-bit range; nothing should overflow in Python.
        c = parse("ab-ak-kb", {"a": 65536, "b": 65536, "k": 4096})
        kernel = gen.generate(c)
        assert kernel.cost > 0
        sim = kernel.candidates[0].simulated
        assert sim.time_s > 0
        # Generated code uses long strides for exactly this reason.
        assert "const long st_A_a" in kernel.source("cuda")

    def test_prime_extents(self, gen):
        c = parse("abc-adc-bd", {"a": 13, "b": 11, "c": 7, "d": 17})
        kernel = gen.generate(c)
        assert verify_plan(kernel.plan)


class TestDegenerateStructures:
    def test_vector_times_matrix(self, gen):
        c = parse("a-ak-k", {"a": 64, "k": 32})
        kernel = gen.generate(c)
        a, b = random_operands(c)
        got = execute_plan(kernel.plan, a, b)
        assert np.allclose(got, a @ b)

    def test_outer_product_vectors(self, gen):
        c = parse("ab-a-b", {"a": 32, "b": 48})
        kernel = gen.generate(c)
        a, b = random_operands(c)
        got = execute_plan(kernel.plan, a, b)
        assert np.allclose(got, np.outer(a, b))

    def test_six_internal_indices(self, gen):
        c = parse("ab-acdefg-bcdefg",
                  {"a": 8, "b": 8, "c": 3, "d": 3, "e": 2, "f": 2,
                   "g": 2})
        kernel = gen.generate(c)
        assert verify_plan(kernel.plan)

    def test_single_thread_plan_still_correct(self):
        c = parse("ab-ak-kb", {"a": 5, "b": 5, "k": 5})
        plan = KernelPlan(c, config_from_spec(c))  # all grid/tile-1
        assert verify_plan(plan)


class TestDtypeEdges:
    def test_float32_accumulation_tolerance(self, gen):
        gen_sp = Cogent(arch="V100", dtype_bytes=4, top_k=1)
        c = parse("ab-ak-kb", {"a": 32, "b": 32, "k": 256})
        kernel = gen_sp.generate(c)
        a, b = random_operands(c, np.float32)
        got = execute_plan(kernel.plan, a, b)
        want = reference_contract(c, a, b)
        assert np.allclose(got, want, rtol=1e-3, atol=1e-3)
