"""Execution strategies: differential correctness, cost-model parity,
deterministic selection, and API/CLI wiring."""

import json
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import api, obs
from repro.core.batched import parse_batched
from repro.core.costmodel import (
    INAPPLICABLE,
    STRATEGY_NAMES,
    StrategyCostModel,
    batchable_suffix,
    common_prefix_run,
    pack_moved_bytes,
    pack_transactions,
    strategy_descriptor,
)
from repro.core.generator import Cogent
from repro.core.ir import make_contraction
from repro.core.parser import parse
from repro.gpu.executor import integer_operands, reference_contract
from repro.strategies import (
    BatchedGemmStrategy,
    StrategyError,
    StrategySelector,
    get_strategy,
)
from repro.tccg import all_benchmarks, by_group
from repro.ttgt.pipeline import TtgtPipeline
from repro.ttgt.transpose import TransposePlan

GROUPS = ("ml", "mo", "ccsd", "ccsd_t")


def _assert_strategy_exact(contraction, strategy, seed=0):
    """The strategy's execute_plan must be bit-identical to einsum."""
    a, b = integer_operands(contraction, seed=seed)
    plan = strategy.plan(contraction)
    got = strategy.execute_plan(plan, a, b)
    want = reference_contract(contraction, a, b)
    assert got.shape == want.shape
    assert np.array_equal(got, want), (
        f"{strategy.name} diverges from einsum on {contraction}"
    )


# -- differential correctness: full TCCG suite ---------------------------

@pytest.mark.parametrize("group", GROUPS)
def test_ttgt_gett_match_einsum_on_tccg_group(group):
    ttgt = get_strategy("ttgt")
    gett = get_strategy("gett")
    for bench in by_group(group):
        contraction = bench.scaled(0.1)
        _assert_strategy_exact(contraction, ttgt, seed=bench.id)
        _assert_strategy_exact(contraction, gett, seed=bench.id)


@pytest.mark.parametrize("group", GROUPS)
def test_direct_matches_einsum_on_tccg_group(group):
    direct = get_strategy("direct")
    for bench in by_group(group):
        _assert_strategy_exact(bench.scaled(0.1), direct, seed=bench.id)


def test_batched_matches_einsum_where_applicable():
    batched = BatchedGemmStrategy()
    covered = 0
    for bench in all_benchmarks():
        contraction = bench.scaled(0.1)
        if batched.applicable(contraction):
            _assert_strategy_exact(contraction, batched, seed=bench.id)
            covered += 1
    # The ML group's TTM shapes carry batchable suffixes.
    assert covered >= 1


def test_all_strategies_match_einsum_on_explicit_batches():
    shapes = [
        ("mnb-mkb-knb", {"m": 12, "n": 10, "k": 8, "b": 5}),
        ("qkh-qdh-kdh", {"q": 9, "k": 11, "d": 6, "h": 4}),
        ("xyuv-xkuv-kyuv", {"x": 6, "y": 5, "k": 4, "u": 3, "v": 2}),
    ]
    for expr, sizes in shapes:
        contraction = parse_batched(expr, sizes)
        for name in STRATEGY_NAMES:
            _assert_strategy_exact(contraction, get_strategy(name))


# -- differential correctness: random contractions -----------------------

@st.composite
def contraction_specs(draw, max_ext=3, max_int=2, max_extent=6):
    alphabet = "abcdefghij"
    n_a = draw(st.integers(1, max_ext))
    n_b = draw(st.integers(1, max_ext))
    n_i = draw(st.integers(1, max_int))
    names = list(alphabet[: n_a + n_b + n_i])
    shuffled = draw(st.permutations(names))
    ext_a = shuffled[:n_a]
    ext_b = shuffled[n_a:n_a + n_b]
    ints = shuffled[n_a + n_b:]
    c_order = draw(st.permutations(ext_a + ext_b))
    a_order = draw(st.permutations(ext_a + ints))
    b_order = draw(st.permutations(ext_b + ints))
    sizes = {
        name: draw(st.integers(1, max_extent)) for name in names
    }
    return make_contraction(c_order, a_order, b_order, sizes)


@settings(max_examples=25, deadline=None)
@given(contraction_specs(), st.integers(0, 10_000))
def test_strategies_match_einsum_on_random_contractions(contraction, seed):
    for name in ("ttgt", "gett", "batched"):
        strategy = get_strategy(name)
        if strategy.applicable(contraction):
            _assert_strategy_exact(contraction, strategy, seed=seed)


@settings(max_examples=10, deadline=None)
@given(contraction_specs(max_ext=2, max_int=1, max_extent=5),
       st.integers(0, 10_000))
def test_direct_matches_einsum_on_random_contractions(contraction, seed):
    _assert_strategy_exact(contraction, get_strategy("direct"), seed=seed)


# -- batch detection ------------------------------------------------------

def test_batchable_suffix_detects_trailing_batch():
    c = parse("arc-abc-br", {"a": 9, "r": 5, "c": 7, "b": 6})
    assert batchable_suffix(c) == ("r", "c")


def test_batchable_suffix_rejects_non_trailing_layouts():
    # 'r' is trailing in C but leading in B: batch slices of B are not
    # contiguous, so no strided batched call applies.
    c = parse("ar-abc-rbc", {"a": 9, "r": 5, "c": 7, "b": 6})
    assert "r" not in batchable_suffix(c)
    # Plain matmul: no index survives the walk past the internals.
    m = parse("ab-ac-cb", {"a": 8, "b": 8, "c": 8})
    assert batchable_suffix(m) == ("b",)  # B[c,b] has b trailing


def test_batched_strategy_refuses_plain_matmul_without_suffix():
    c = parse("ab-ca-bc", {"a": 8, "b": 8, "c": 8})
    strategy = BatchedGemmStrategy()
    assert not strategy.applicable(c)
    with pytest.raises(StrategyError):
        strategy.plan(c)


# -- cost model: scalar/columnar parity and TTGT routing ------------------

def test_scalar_traffic_equals_columnar_matrix_on_suite():
    model = StrategyCostModel()
    contractions = [b.contraction() for b in all_benchmarks()]
    matrix = model.traffic_matrix(
        [strategy_descriptor(c) for c in contractions]
    )
    for row, contraction in zip(matrix, contractions):
        traffic = model.traffic(contraction)
        for j, name in enumerate(STRATEGY_NAMES):
            assert int(row[j]) == traffic[name].total


def test_ttgt_plan_packing_matches_strategy_model():
    model = StrategyCostModel()
    pipeline = TtgtPipeline(get_strategy("ttgt").arch)
    for bench in all_benchmarks():
        contraction = bench.contraction()
        plan = pipeline.plan(contraction)
        traffic = model.traffic(contraction)["ttgt"]
        assert plan.packing_transactions() == traffic.pack + traffic.unpack


def test_transpose_read_run_matches_common_prefix_run():
    sizes = {"a": 4, "b": 5, "c": 6}
    src = ("a", "b", "c")
    for dst in (("a", "b", "c"), ("a", "c", "b"), ("c", "a", "b")):
        from repro.ttgt.transpose import permutation_between

        plan = TransposePlan(
            tuple(sizes[i] for i in src), permutation_between(src, dst)
        )
        assert plan.read_run == common_prefix_run(src, dst, sizes)


def test_pack_helpers_basic_arithmetic():
    # 2 elements * 8 bytes, read and written once each.
    assert pack_moved_bytes(1000, 8) == 16000
    # Fully contiguous pass: 1 read + 1 write transaction per 16 doubles.
    assert pack_transactions(16, 16, 8, 128) == 2
    # Scattered reads (run 1): one transaction per element on the read
    # side, coalesced write side unchanged.
    assert pack_transactions(16, 1, 8, 128) == 17


def test_inapplicable_batched_loses_every_ranking():
    model = StrategyCostModel()
    c = parse("ab-ca-bc", {"a": 64, "b": 64, "c": 64})
    traffic = model.traffic(c)
    assert not traffic["batched"].applicable
    assert traffic["batched"].total >= int(INAPPLICABLE)


# -- selection: determinism, ranking, suite ------------------------------

def test_selector_ranks_batched_first_on_attention_shape():
    contraction = parse_batched(
        "qkh-qdh-kdh", {"q": 128, "k": 128, "d": 64, "h": 12}
    )
    choice = StrategySelector().choose(contraction)
    assert choice.selected == "batched"
    totals = [t.total for _, t in choice.ranking if t.applicable]
    assert totals == sorted(totals)


def test_selection_deterministic_across_worker_counts():
    expr, sizes = "abcd-aebf-dfce", 16
    opts1 = api.Options(workers=1, strategy="auto")
    opts4 = api.Options(workers=4, strategy="auto")
    one = api.select_strategy(expr, sizes, options=opts1)
    four = api.select_strategy(expr, sizes, options=opts4)
    assert one.as_dict() == four.as_dict()


def test_fixed_strategy_restricts_ranking():
    choice = api.select_strategy(
        "ab-ac-cb", 32, options=api.Options(strategy="gett")
    )
    assert choice.selected == "gett"
    assert [name for name, _ in choice.ranking] == ["gett"]


def test_rank_suite_is_fast_and_consistent_with_scalar_path():
    selector = StrategySelector()
    contractions = [b.contraction() for b in all_benchmarks()]
    start = time.perf_counter()
    suite = selector.rank_suite(contractions)
    elapsed = time.perf_counter() - start
    assert elapsed < 1.0
    assert len(suite.winners) == len(contractions)
    # Suite winners equal the per-shape scalar choices.
    for contraction, winner in zip(contractions, suite.winners):
        assert StrategySelector().rank(contraction).selected == winner
    assert suite.winner_counts["direct"] + sum(
        v for k, v in suite.winner_counts.items() if k != "direct"
    ) == len(contractions)
    assert 0.0 <= suite.improved_fraction <= 1.0


def test_selection_records_obs_counters():
    contraction = parse_batched(
        "mnb-mkb-knb", {"m": 256, "n": 256, "k": 64, "b": 48}
    )
    with obs.tracing() as session:
        StrategySelector().choose(contraction)
    counters = session.payload()["metrics"]["counters"]
    assert counters.get("strategy.selected.batched") == 1


# -- simulated strategy ranking ------------------------------------------

def test_simulate_rank_covers_every_strategy():
    contraction = parse("abcd-aebf-dfce", 24)
    selector = StrategySelector()
    choice = selector.simulate_rank(contraction)
    assert sorted(choice.ranking) == sorted(selector.strategies)
    assert choice.selected == choice.ranking[0]
    assert choice.modeled.selected in STRATEGY_NAMES
    # Simulated strategies come fastest-first.
    simulated = [
        n for n in choice.ranking if choice.times.get(n) is not None
    ]
    times = [choice.times[n] for n in simulated]
    assert times == sorted(times)
    assert all(t > 0 for t in times)


def test_simulate_rank_is_deterministic_and_cached():
    contraction = parse("abcd-aebf-dfce", 24)
    selector = StrategySelector()
    first = selector.simulate_rank(contraction)
    cached = len(selector._plan_cache)
    second = selector.simulate_rank(contraction)
    assert first == second
    # Macro-kernel searches are cached per shape: no new plans.
    assert len(selector._plan_cache) == cached


def test_choose_simulated_records_obs_counters():
    contraction = parse("abcd-aebf-dfce", 24)
    with obs.tracing() as session:
        choice = StrategySelector().choose_simulated(contraction)
    counters = session.payload()["metrics"]["counters"]
    assert counters.get(f"strategy.selected.{choice.selected}") == 1
    simulated = [
        n for n, t in choice.times.items() if t is not None
    ]
    for name in simulated:
        assert counters.get(f"strategy.simulated.{name}") == 1


def test_simulated_choice_as_dict_roundtrips_json():
    contraction = parse_batched(
        "mnb-mkb-knb", {"m": 128, "n": 128, "k": 64, "b": 16}
    )
    choice = StrategySelector().simulate_rank(contraction)
    payload = json.loads(json.dumps(choice.as_dict()))
    assert payload["selected"] == choice.selected
    assert isinstance(payload["agrees_with_model"], bool)
    assert payload["modeled_selected"] == choice.modeled.selected


# -- wiring: Options, Cogent signature, CLI ------------------------------

def test_options_rejects_unknown_strategy():
    with pytest.raises(ValueError, match="strategy"):
        api.Options(strategy="fastest")


def test_cogent_rejects_unknown_strategy():
    with pytest.raises(ValueError, match="strategy"):
        Cogent(strategy="fastest")


def test_search_signature_namespaces_strategies():
    signatures = {
        Cogent(strategy=s).search_signature()
        for s in ("auto",) + STRATEGY_NAMES
    }
    assert len(signatures) == 5
    assert "strategy=direct" in Cogent().search_signature()


def test_workload_key_differs_per_strategy():
    from repro.core.program import workload_key

    c = parse("ab-ac-cb", 32)
    keys = set()
    for s in ("direct", "gett", "auto"):
        g = Cogent(strategy=s)
        keys.add(
            workload_key(
                c, g.arch, g.dtype_bytes, g.search_signature()
            )
        )
    assert len(keys) == 3


def test_cogent_select_strategy_honours_fixed_strategy():
    choice = Cogent(strategy="ttgt").select_strategy("ab-ac-cb", 32)
    assert choice.selected == "ttgt"
    auto = Cogent(strategy="auto").select_strategy("ab-ac-cb", 32)
    assert len(auto.ranking) == len(STRATEGY_NAMES)


def test_cogent_select_strategy_parses_batched_expressions():
    choice = Cogent(strategy="auto").select_strategy(
        "qkh-qdh-kdh", {"q": 128, "k": 128, "d": 64, "h": 12}
    )
    assert choice.selected == "batched"


def test_cli_rank_strategy_json(tmp_path):
    from repro.cli import main

    out = tmp_path / "rank.json"
    status = main([
        "rank", "mnb-mkb-knb", "--sizes", "m=32,n=32,k=16,b=8",
        "--strategy", "auto", "--top", "1", "--json", str(out),
    ])
    assert status == 0
    payload = json.loads(out.read_text())
    assert payload["strategy"]["selected"] in STRATEGY_NAMES
    ranked = payload["strategy"]["ranking"]
    assert len(ranked) == len(STRATEGY_NAMES)
    totals = [r["total"] for r in ranked if r["total"] is not None]
    assert totals == sorted(totals)


def test_cli_bench_strategy_json(tmp_path):
    from repro.cli import main

    out = tmp_path / "bench.json"
    status = main([
        "bench", "--group", "ml", "--limit", "3",
        "--frameworks", "cogent", "--strategy", "auto",
        "--json", str(out),
    ])
    assert status == 0
    payload = json.loads(out.read_text())
    strategy = payload["strategy"]
    assert len(strategy["shapes"]) == 3
    assert set(strategy["winner_counts"]) == set(STRATEGY_NAMES)
    assert strategy["direct_total"] >= strategy["auto_total"]
