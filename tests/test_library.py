"""Tests for multi-size kernel libraries (repro.core.library)."""

import numpy as np
import pytest

from repro import Cogent, parse
from repro.core.library import KernelLibrary, clamp_config
from repro.core.mapping import config_from_spec
from repro.gpu.executor import random_operands, reference_contract


@pytest.fixture(scope="module")
def library():
    return KernelLibrary(
        "abcd-aebf-dfce", [16, 48],
        generator=Cogent(arch="V100", top_k=8),
    )


class TestBuild:
    def test_one_entry_per_size(self, library):
        assert len(library) == 2

    def test_distinct_kernel_names(self, library):
        names = {e.kernel.kernel_name for e in library.entries}
        assert names == {"tc_kernel_v0", "tc_kernel_v1"}

    def test_empty_sizes_rejected(self):
        with pytest.raises(ValueError):
            KernelLibrary("ab-ak-kb", [])

    def test_mixed_size_specs(self):
        lib = KernelLibrary(
            "ab-ak-kb",
            [{"a": 64, "b": 64, "k": 64}, 256],
            generator=Cogent(arch="V100", top_k=4),
        )
        assert lib.entries[0].sizes["a"] == 64
        assert lib.entries[1].sizes["a"] == 256


class TestSelect:
    def test_nearest_by_log_distance(self, library):
        assert library.select(16).sizes["a"] == 16
        assert library.select(48).sizes["a"] == 48
        assert library.select(20).sizes["a"] == 16
        assert library.select(40).sizes["a"] == 48

    def test_per_index_sizes(self, library):
        mixed = {"a": 48, "b": 48, "c": 48, "d": 48, "e": 16, "f": 16}
        entry = library.select(mixed)
        assert entry.sizes["a"] == 48


class TestDispatch:
    def test_sizes_from_operands(self, library):
        c = parse("abcd-aebf-dfce",
                  {"a": 5, "b": 4, "c": 3, "d": 6, "e": 2, "f": 3})
        a, b = random_operands(c)
        sizes = library.sizes_from_operands(a, b)
        assert sizes == c.sizes

    def test_inconsistent_shapes_rejected(self, library):
        a = np.zeros((5, 2, 4, 3))
        b = np.zeros((6, 9, 3, 2))  # f extent disagrees (3 vs 9)
        with pytest.raises(ValueError):
            library.sizes_from_operands(a, b)

    def test_wrong_rank_rejected(self, library):
        with pytest.raises(ValueError):
            library.sizes_from_operands(np.zeros((5, 2)), np.zeros((2,) * 4))

    def test_dispatch_matches_einsum_near_small(self, library):
        c = parse("abcd-aebf-dfce",
                  {"a": 10, "b": 9, "c": 8, "d": 11, "e": 5, "f": 6})
        a, b = random_operands(c, seed=2)
        got = library.dispatch(a, b)
        assert np.allclose(got, reference_contract(c, a, b))

    def test_dispatch_matches_einsum_near_large(self, library):
        c = parse("abcd-aebf-dfce",
                  {"a": 40, "b": 13, "c": 11, "d": 37, "e": 7, "f": 9})
        a, b = random_operands(c, seed=3)
        got = library.dispatch(a, b)
        assert np.allclose(got, reference_contract(c, a, b))

    def test_dispatch_with_tiny_actual_sizes_clamps_tiles(self, library):
        c = parse("abcd-aebf-dfce", 3)
        a, b = random_operands(c, seed=4)
        got = library.dispatch(a, b)
        assert np.allclose(got, reference_contract(c, a, b))


class TestClampConfig:
    def test_tiles_clamped_to_extents(self):
        c = parse("ab-ak-kb", {"a": 4, "b": 4, "k": 4})
        big = parse("ab-ak-kb", {"a": 64, "b": 64, "k": 64})
        cfg = config_from_spec(
            big, tb_x=[("a", 16)], tb_y=[("b", 16)], tb_k=[("k", 16)]
        )
        clamped = clamp_config(cfg, c)
        clamped.validate_for(c)
        assert clamped.tile("a") == 4


class TestEmission:
    def test_library_source_contains_every_version(self, library):
        src = library.cuda_library_source()
        assert src.count("__global__") == 2
        assert "tc_kernel_v0" in src and "tc_kernel_v1" in src

    def test_dispatcher_present_and_balanced(self, library):
        src = library.cuda_library_source()
        assert "select_version(" in src
        assert src.count("{") == src.count("}")
