"""Unit tests for the shared codegen fragments (codegen/indexing.py)."""

import pytest

from repro.core.codegen import indexing as ix
from repro.core.mapping import config_from_spec
from repro.core.parser import parse
from repro.core.plan import Axis, KernelPlan


@pytest.fixture
def plan():
    c = parse(
        "abcd-aebf-dfce",
        {"a": 16, "b": 8, "c": 12, "d": 10, "e": 6, "f": 4},
    )
    cfg = config_from_spec(
        c,
        tb_x=[("a", 8)], tb_y=[("c", 4)],
        reg_x=[("b", 4)], reg_y=[("d", 2)],
        tb_k=[("e", 3), ("f", 2)],
    )
    return KernelPlan(c, cfg)


class TestNaming:
    def test_extent_param(self):
        assert ix.extent_param("a") == "n_a"

    def test_stride_var(self):
        assert ix.stride_var("A", "e") == "st_A_e"

    def test_offsets(self):
        assert ix.block_offset_var("a") == "boff_a"
        assert ix.step_offset_var("e") == "soff_e"


class TestStrideDefinitions:
    def test_fvi_stride_is_one(self, plan):
        lines = ix.stride_definitions(plan.contraction.a)
        assert lines[0] == "const long st_A_a = 1;"

    def test_strides_accumulate(self, plan):
        lines = ix.stride_definitions(plan.contraction.a)
        assert "const long st_A_e = (long)n_a;" in lines
        assert "const long st_A_b = (long)n_a * (long)n_e;" in lines

    def test_one_line_per_index(self, plan):
        assert len(ix.stride_definitions(plan.contraction.c)) == 4


class TestTileCounts:
    def test_ceil_division_text(self, plan):
        lines = ix.tile_count_definitions(plan.block_axes)
        assert "const int nt_a = (n_a + 8 - 1) / 8;" in lines


class TestDecompose:
    def test_fastest_axis_first(self, plan):
        lines = ix.decompose_offsets(
            "blockIdx.x", plan.block_axes, ix.block_offset_var, "bid_"
        )
        text = "\n".join(lines)
        assert text.index("boff_a") < text.index("boff_b")
        assert "int bid_ = blockIdx.x;" in lines[0]

    def test_last_axis_skips_modulo(self, plan):
        lines = ix.decompose_offsets(
            "step_", plan.step_axes, ix.step_offset_var, "sid_"
        )
        # Last axis uses the remaining quotient directly.
        assert lines[-1].startswith("const int soff_f = sid_ *")

    def test_empty_axes(self):
        lines = ix.decompose_offsets("x", [], ix.step_offset_var, "t_")
        assert any("(void)t_;" in line for line in lines)


class TestFlatten:
    def test_single_term(self):
        expr = ix.flatten_expr({"a": "ca"}, [("a", 4)])
        assert expr == "ca"

    def test_mixed_radix(self):
        expr = ix.flatten_expr(
            {"a": "ca", "b": "cb"}, [("a", 4), ("b", 3)]
        )
        assert expr == "ca + 4 * (cb)"

    def test_empty_is_zero(self):
        assert ix.flatten_expr({}, []) == "0"


class TestTileLoadFragment:
    def test_body_declares_all_coordinates(self, plan):
        frag = ix.TileLoadFragment(plan, plan.contraction.a)
        lines, addr, bounds, smem = frag.body("l_")
        text = "\n".join(lines)
        for index in plan.contraction.a.indices:
            assert f"lc_{index}" in text
            assert f"g_{index}" in text

    def test_address_uses_strides(self, plan):
        frag = ix.TileLoadFragment(plan, plan.contraction.b)
        _, addr, _, _ = frag.body("l_")
        for index in plan.contraction.b.indices:
            assert f"st_B_{index}" in addr

    def test_bounds_cover_every_index(self, plan):
        frag = ix.TileLoadFragment(plan, plan.contraction.a)
        _, _, bounds, _ = frag.body("l_")
        for index in plan.contraction.a.indices:
            assert f"(g_{index} < n_{index})" in bounds

    def test_smem_index_scales_by_block_tile(self, plan):
        frag = ix.TileLoadFragment(plan, plan.contraction.a)
        _, _, _, smem = frag.body("l_")
        # int_flat * block_tile_x + ext_flat
        assert f"* {plan.config.block_tile_x} +" in smem


class TestStoreFragment:
    def test_thread_coords(self, plan):
        store = ix.StoreFragment(plan)
        lines, coords = store.thread_coord_decls()
        assert set(coords) == {"a", "c"}  # TB_X index a, TB_Y index c

    def test_reg_coords(self, plan):
        store = ix.StoreFragment(plan)
        _, coords = store.reg_coord_decls("rx_", "ry_")
        assert set(coords) == {"b", "d"}

    def test_address_and_bounds(self, plan):
        store = ix.StoreFragment(plan)
        t_lines, t_coords = store.thread_coord_decls()
        r_lines, r_coords = store.reg_coord_decls("rx_", "ry_")
        lines, addr, bounds = store.address_and_bounds(
            {**t_coords, **r_coords}
        )
        for index in plan.contraction.c.indices:
            assert f"st_C_{index}" in addr
            assert f"gc_{index} < n_{index}" in bounds


class TestIndent:
    def test_indent_levels(self):
        assert ix.indent(["x;"], 2) == ["        x;"]

    def test_empty_lines_untouched(self):
        assert ix.indent(["", "y;"], 1) == ["", "    y;"]
