"""Pinned contraction/config cases backing the golden-file snapshot tests.

Each case is a hand-written :func:`config_from_spec` mapping — never the
output of a search — so the emitted source only changes when an emitter
changes, not when the cost model is retuned.  ``tools/update_goldens.py``
regenerates the snapshots from these same definitions.
"""

from repro.core.mapping import config_from_spec
from repro.core.parser import parse
from repro.core.plan import KernelPlan

# TCCG-flavoured slice: a plain GEMM, the paper's Eq. 1 with register
# tiles and a two-index TB_K, and a single-precision TTM.
_CASES = {
    "matmul": dict(
        expr="ab-ak-kb",
        sizes={"a": 24, "b": 16, "k": 12},
        spec=dict(tb_x=[("a", 8)], tb_y=[("b", 8)], tb_k=[("k", 8)]),
        dtype_bytes=8,
    ),
    "eq1": dict(
        expr="abcd-aebf-dfce",
        sizes={"a": 7, "b": 5, "c": 6, "d": 4, "e": 3, "f": 5},
        spec=dict(
            tb_x=[("a", 4)], tb_y=[("d", 2)],
            reg_x=[("b", 2)], reg_y=[("c", 3)],
            tb_k=[("e", 2), ("f", 2)],
        ),
        dtype_bytes=8,
    ),
    "ttm_sp": dict(
        expr="abc-adc-bd",
        sizes={"a": 6, "b": 5, "c": 4, "d": 7},
        spec=dict(tb_x=[("a", 4)], tb_y=[("b", 4)], tb_k=[("d", 3)]),
        dtype_bytes=4,
    ),
}

GOLDEN_CASES = tuple(sorted(_CASES))


def golden_plan(case: str) -> KernelPlan:
    spec = _CASES[case]
    c = parse(spec["expr"], spec["sizes"])
    cfg = config_from_spec(c, **spec["spec"])
    return KernelPlan(c, cfg, spec["dtype_bytes"])
