"""Tests for kernel caching and the contract() API (repro.core.cache)."""

import numpy as np
import pytest

from repro import Cogent, parse
from repro.core.cache import (
    KernelCache,
    cache_key,
    contract,
    size_bucket,
)


@pytest.fixture
def cache():
    return KernelCache(Cogent(arch="V100", top_k=4))


class TestSizeBucket:
    def test_powers_of_two_fixed(self):
        for n in (1, 2, 4, 8, 16, 64, 256):
            assert size_bucket(n) == n

    def test_rounds_to_nearest(self):
        assert size_bucket(24) == 32  # log2(24) = 4.58 rounds up
        assert size_bucket(20) == 16
        assert size_bucket(48) == 64
        assert size_bucket(3) == 4

    def test_minimum_is_one(self):
        assert size_bucket(0) == 1
        assert size_bucket(1) == 1


class TestCacheKey:
    def test_same_problem_same_key(self, v100):
        c1 = parse("ab-ak-kb", 64)
        c2 = parse("ab-ak-kb", 64)
        assert cache_key(c1, v100, 8) == cache_key(c2, v100, 8)

    def test_nearby_sizes_share_key(self, v100):
        c1 = parse("ab-ak-kb", 60)
        c2 = parse("ab-ak-kb", 70)
        assert cache_key(c1, v100, 8) == cache_key(c2, v100, 8)

    def test_different_structure_differs(self, v100):
        c1 = parse("ab-ak-kb", 64)
        c2 = parse("ab-ka-kb", 64)
        assert cache_key(c1, v100, 8) != cache_key(c2, v100, 8)

    def test_arch_and_dtype_in_key(self, v100, p100):
        c = parse("ab-ak-kb", 64)
        assert cache_key(c, v100, 8) != cache_key(c, p100, 8)
        assert cache_key(c, v100, 8) != cache_key(c, v100, 4)


class TestKernelCache:
    def test_miss_then_hit(self, cache):
        c = parse("ab-ak-kb", 64)
        k1 = cache.get(c)
        k2 = cache.get(c)
        assert k1 is k2
        assert cache.hits == 1 and cache.misses == 1

    def test_len(self, cache):
        cache.get(parse("ab-ak-kb", 64))
        cache.get(parse("ab-ak-kb", 256))
        assert len(cache) == 2

    def test_disk_persistence(self, tmp_path):
        cache = KernelCache(
            Cogent(arch="V100", top_k=1), directory=tmp_path
        )
        cache.get(parse("ab-ak-kb", 64))
        saved = list(tmp_path.iterdir())
        assert len(saved) == 1
        assert (saved[0] / "kernel.cu").exists()
        assert (saved[0] / "meta.json").exists()


class TestContract:
    def test_matmul(self):
        a = np.random.default_rng(0).random((12, 7))
        b = np.random.default_rng(1).random((7, 9))
        assert np.allclose(contract("ab-ak-kb", a, b), a @ b)

    def test_einsum_syntax(self):
        rng = np.random.default_rng(2)
        a = rng.random((4, 3, 5))
        b = rng.random((3, 6))
        got = contract("adc,db->abc", a, b)
        assert np.allclose(got, np.einsum("adc,db->abc", a, b))

    def test_eq1(self, cache):
        rng = np.random.default_rng(3)
        a = rng.random((6, 3, 5, 4))
        b = rng.random((7, 4, 6, 3))
        got = contract("abcd-aebf-dfce", a, b, cache=cache)
        want = np.einsum("aebf,dfce->abcd", a, b)
        assert np.allclose(got, want)

    def test_bucket_reuse_still_correct(self, cache):
        rng = np.random.default_rng(4)
        for m, n, k in ((17, 15, 6), (15, 18, 7), (14, 16, 7)):
            a = rng.random((m, k))
            b = rng.random((k, n))
            assert np.allclose(
                contract("ab-ak-kb", a, b, cache=cache), a @ b
            )
        assert cache.misses == 1
        assert cache.hits == 2

    def test_single_precision(self, cache):
        rng = np.random.default_rng(5)
        a = rng.random((10, 6), dtype=np.float32)
        b = rng.random((6, 8), dtype=np.float32)
        got = contract("ab-ak-kb", a, b)
        assert np.allclose(got, a @ b, rtol=1e-4)

    def test_wrong_rank_rejected(self):
        with pytest.raises(ValueError):
            contract("ab-ak-kb", np.zeros((4, 4, 4)), np.zeros((4, 4)))

    def test_inconsistent_extent_rejected(self):
        with pytest.raises(ValueError):
            contract("ab-ak-kb", np.zeros((4, 5)), np.zeros((6, 4)))


class TestBatchCacheApi:
    def test_lookup_does_not_generate(self, cache):
        c = parse("ab-ak-kb", 64)
        assert cache.lookup(c) is None
        assert cache.misses == 1
        assert len(cache) == 0

    def test_put_then_lookup(self, cache):
        c = parse("ab-ak-kb", 64)
        kernel = cache.generator.generate(c)
        cache.put(c, kernel)
        assert cache.lookup(c) is kernel
        assert cache.hits == 1

    def test_get_many_populates_and_reuses(self, cache):
        items = [parse("ab-ak-kb", 64), parse("abc-ak-kbc", 32)]
        kernels = cache.get_many(items)
        assert len(kernels) == 2
        assert len(cache) == 2
        again = cache.get_many(items)
        assert again[0] is kernels[0] and again[1] is kernels[1]


class TestEvalCache:
    def test_put_then_lookup_roundtrip(self, tmp_path):
        from repro.core.cache import EvalCache

        cache = EvalCache(tmp_path / "eval")
        payload = {"gflops": 123.4, "framework": "cogent"}
        cache.put("abc123", payload)
        assert cache.lookup("abc123") == payload
        assert cache.hits == 1 and cache.misses == 0
        assert len(cache) == 1

    def test_missing_key_misses(self, tmp_path):
        from repro.core.cache import EvalCache

        cache = EvalCache(tmp_path / "eval")
        assert cache.lookup("nothere") is None
        assert cache.misses == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        from repro.core.cache import EvalCache

        cache = EvalCache(tmp_path / "eval")
        (cache.directory / "bad0.json").write_text("{not json")
        assert cache.lookup("bad0") is None
        assert cache.misses == 1

    def test_persists_across_instances(self, tmp_path):
        from repro.core.cache import EvalCache

        EvalCache(tmp_path / "eval").put("k", {"v": 1})
        assert EvalCache(tmp_path / "eval").lookup("k") == {"v": 1}


class TestEvalCacheKey:
    SIZES = {"a": 32, "b": 32, "k": 64}

    def _key(self, **overrides):
        from repro.core.cache import eval_cache_key

        base = dict(
            expr="ab-ak-kb", sizes=self.SIZES, arch_name="V100",
            dtype_bytes=8, framework="cogent",
            params={"tc_seed": 0},
        )
        base.update(overrides)
        return eval_cache_key(**base)

    def test_deterministic(self):
        assert self._key() == self._key()

    def test_sensitive_to_every_component(self):
        base = self._key()
        assert self._key(expr="ab-kb-ak") != base
        assert self._key(sizes={"a": 32, "b": 32, "k": 65}) != base
        assert self._key(arch_name="P100") != base
        assert self._key(dtype_bytes=4) != base
        assert self._key(framework="talsh") != base
        assert self._key(params={"tc_seed": 1}) != base

    def test_extents_not_bucketed(self):
        # Unlike cache_key, nearby sizes must NOT share evaluations.
        assert self._key(sizes={"a": 32, "b": 32, "k": 63}) != \
            self._key(sizes={"a": 32, "b": 32, "k": 64})
