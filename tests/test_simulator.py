"""Tests for the performance simulator (repro.gpu.simulator)."""

import pytest

from repro.core.costmodel import TransactionEstimate
from repro.core.mapping import config_from_spec
from repro.core.parser import parse
from repro.core.plan import KernelPlan
from repro.gpu.simulator import GpuSimulator, ModelParams


@pytest.fixture
def c64():
    return parse("ab-ak-kb", {"a": 512, "b": 512, "k": 512})


def make_plan(c, dtype_bytes=8, **spec):
    return KernelPlan(c, config_from_spec(c, **spec), dtype_bytes)


def good_plan(c, dtype_bytes=8):
    return make_plan(
        c, dtype_bytes,
        tb_x=[("a", 16)], tb_y=[("b", 16)], tb_k=[("k", 16)],
    )


class TestBasics:
    def test_gflops_time_consistent(self, v100, c64):
        sim = GpuSimulator(v100)
        plan = good_plan(c64)
        result = sim.simulate(plan)
        assert result.gflops == pytest.approx(
            plan.flops / result.time_s / 1e9
        )

    def test_time_at_least_launch_overhead(self, v100):
        tiny = parse("ab-ak-kb", {"a": 4, "b": 4, "k": 4})
        plan = make_plan(tiny, tb_x=[("a", 4)], tb_y=[("b", 4)])
        result = GpuSimulator(v100).simulate(plan)
        assert result.time_s >= ModelParams().launch_overhead_s

    def test_limiter_is_one_of_resources(self, v100, c64):
        result = GpuSimulator(v100).simulate(good_plan(c64))
        assert result.limiter in ("dram", "fma", "smem")

    def test_unrunnable_plan_raises(self, v100, c64):
        plan = make_plan(
            c64, tb_x=[("a", 16)], tb_y=[("b", 16)],
            reg_x=[], reg_y=[], tb_k=[("k", 512)],
        )
        # 512-deep smem tile blows the per-block capacity.
        with pytest.raises(ValueError):
            GpuSimulator(v100).simulate(plan)

    def test_custom_traffic_respected(self, v100, c64):
        sim = GpuSimulator(v100)
        plan = good_plan(c64)
        small = sim.simulate(
            plan, TransactionEstimate(load_a=10, load_b=10, store_c=10)
        )
        big = sim.simulate(
            plan,
            TransactionEstimate(
                load_a=10 ** 7, load_b=10 ** 7, store_c=10 ** 7
            ),
        )
        assert big.time_s > small.time_s


class TestMonotonicity:
    def test_more_traffic_never_faster(self, v100, c64):
        sim = GpuSimulator(v100)
        plan = good_plan(c64)
        times = []
        for scale in (1, 4, 16):
            est = TransactionEstimate(
                load_a=100_000 * scale,
                load_b=100_000 * scale,
                store_c=100_000 * scale,
            )
            times.append(sim.simulate(plan, est).time_s)
        assert times == sorted(times)

    def test_sp_faster_than_dp_same_config(self, v100, c64):
        # 32-wide rows: 2 transactions in DP, 1 in SP.
        def plan(dtype_bytes):
            return make_plan(
                c64, dtype_bytes,
                tb_x=[("a", 32)], tb_y=[("b", 8)], tb_k=[("k", 16)],
            )
        dp = GpuSimulator(v100).simulate(plan(8))
        sp = GpuSimulator(v100).simulate(plan(4))
        assert sp.time_s < dp.time_s

    def test_v100_faster_than_p100(self, v100, p100, c64):
        plan = good_plan(c64)
        tv = GpuSimulator(v100).simulate(plan).time_s
        tp = GpuSimulator(p100).simulate(plan).time_s
        assert tv < tp

    def test_register_tiling_improves_eq1(self, v100):
        c = parse("abcd-aebf-dfce", 64)
        no_reg = make_plan(
            c, tb_x=[("a", 16)], tb_y=[("d", 16)], tb_k=[("e", 16)]
        )
        with_reg = make_plan(
            c,
            tb_x=[("a", 16)], tb_y=[("d", 16)],
            reg_x=[("b", 4)], reg_y=[("c", 4)],
            tb_k=[("e", 16)],
        )
        sim = GpuSimulator(v100)
        assert sim.simulate(with_reg).time_s < sim.simulate(no_reg).time_s


class TestWaves:
    def test_single_block_poorly_utilised(self, v100):
        c = parse("ab-ak-kb", {"a": 16, "b": 16, "k": 512})
        one_block = make_plan(
            c, tb_x=[("a", 16)], tb_y=[("b", 16)], tb_k=[("k", 16)]
        )
        many = parse("ab-ak-kb", {"a": 512, "b": 512, "k": 512})
        many_blocks = make_plan(
            many, tb_x=[("a", 16)], tb_y=[("b", 16)], tb_k=[("k", 16)]
        )
        sim = GpuSimulator(v100)
        r1 = sim.simulate(one_block)
        r2 = sim.simulate(many_blocks)
        assert r1.waves == 1
        assert r2.gflops > r1.gflops

    def test_waves_reported(self, v100):
        c = parse("ab-ak-kb", {"a": 4096, "b": 4096, "k": 64})
        plan = make_plan(
            c, tb_x=[("a", 16)], tb_y=[("b", 16)], tb_k=[("k", 16)]
        )
        result = GpuSimulator(v100).simulate(plan)
        assert result.waves >= 1


class TestParams:
    def test_degraded_params_slower(self, v100, c64):
        plan = good_plan(c64)
        fast = GpuSimulator(v100).simulate(plan)
        slow = GpuSimulator(
            v100,
            ModelParams(
                bw_efficiency=0.4,
                loop_overhead=8.0,
                smem_load_weight=2.0,
                sync_cycles_per_step=1000.0,
            ),
        ).simulate(plan)
        assert slow.time_s > fast.time_s

    def test_str_contains_gflops(self, v100, c64):
        result = GpuSimulator(v100).simulate(good_plan(c64))
        assert "GFLOPS" in str(result)


class TestL2Model:
    def test_off_by_default(self, v100, c64):
        plan = good_plan(c64)
        base = GpuSimulator(v100).simulate(plan)
        explicit = GpuSimulator(
            v100, ModelParams(model_l2=False)
        ).simulate(plan)
        assert base.time_s == explicit.time_s

    def test_l2_helps_reloaded_small_inputs(self, v100):
        # 512^3 matmul with 16x16 tiles re-reads each 2 MB input 32
        # times; both inputs fit in the V100's 6 MB L2.
        c = parse("ab-ak-kb", {"a": 512, "b": 512, "k": 512})
        plan = make_plan(
            c, tb_x=[("a", 16)], tb_y=[("b", 16)], tb_k=[("k", 16)]
        )
        base = GpuSimulator(v100).simulate(plan)
        with_l2 = GpuSimulator(
            v100, ModelParams(model_l2=True)
        ).simulate(plan)
        assert with_l2.time_s < base.time_s

    def test_l2_irrelevant_for_huge_tensors(self, v100):
        c = parse("ab-ak-kb", {"a": 8192, "b": 8192, "k": 8192})
        plan = make_plan(
            c, tb_x=[("a", 16)], tb_y=[("b", 16)], tb_k=[("k", 16)]
        )
        base = GpuSimulator(v100).simulate(plan)
        with_l2 = GpuSimulator(
            v100, ModelParams(model_l2=True)
        ).simulate(plan)
        # 512 MB operands dwarf the 6 MB L2: at most a tiny discount.
        assert with_l2.time_s > base.time_s * 0.9

    def test_l2_never_slower(self, v100, c64):
        plan = good_plan(c64)
        base = GpuSimulator(v100).simulate(plan)
        with_l2 = GpuSimulator(
            v100, ModelParams(model_l2=True)
        ).simulate(plan)
        assert with_l2.time_s <= base.time_s
