"""Tests for contraction networks (repro.core.network)."""

import numpy as np
import pytest

from repro import Cogent
from repro.core.ir import ContractionError
from repro.core.network import (
    NetworkContractor,
    contract_network,
    optimal_path,
    parse_network,
)


@pytest.fixture(scope="module")
def gen():
    return Cogent(arch="V100", top_k=2)


class TestParse:
    def test_basic(self):
        spec = parse_network("ab,bc,cd->ad", 8)
        assert len(spec.inputs) == 3
        assert spec.output == ("a", "d")

    def test_sizes_dict(self):
        spec = parse_network("ab,bc->ac", {"a": 2, "b": 3, "c": 4})
        assert spec.sizes["b"] == 3

    def test_missing_arrow_rejected(self):
        with pytest.raises(ContractionError):
            parse_network("ab,bc", 4)

    def test_single_tensor_rejected(self):
        with pytest.raises(ContractionError):
            parse_network("ab->ab", 4)

    def test_unknown_output_index_rejected(self):
        with pytest.raises(ContractionError):
            parse_network("ab,bc->az", 4)


class TestOptimalPath:
    def test_chain_order_respects_sizes(self):
        # With b huge, contracting (A,B) first shrinks the problem.
        spec = parse_network(
            "ab,bc,cd->ad", {"a": 8, "b": 512, "c": 4, "d": 8}
        )
        path = optimal_path(spec)
        first = path.steps[0]
        assert {first.left, first.right} == {0, 1}

    def test_reverse_skew_flips_order(self):
        spec = parse_network(
            "ab,bc,cd->ad", {"a": 8, "b": 4, "c": 512, "d": 8}
        )
        path = optimal_path(spec)
        first = path.steps[0]
        assert {first.left, first.right} == {1, 2}

    def test_total_flops_counts_both_steps(self):
        spec = parse_network(
            "ab,bc,cd->ad", {"a": 4, "b": 4, "c": 4, "d": 4}
        )
        path = optimal_path(spec)
        assert path.total_flops == 2 * (4 ** 3) * 2

    def test_steps_form_valid_contractions(self):
        spec = parse_network("abk,kcl,ld->abcd", 6)
        path = optimal_path(spec)
        for step in path.steps:
            assert step.contraction.flops > 0

    def test_four_tensor_path_length(self):
        spec = parse_network("ab,bc,cd,de->ae", 6)
        assert len(optimal_path(spec).steps) == 3

    def test_disconnected_outer_product_allowed(self):
        # a,b networks with no shared index: steps become outer
        # products, which the binary IR supports.
        spec = parse_network("a,b->ab", {"a": 4, "b": 5})
        path = optimal_path(spec)
        assert len(path.steps) == 1
        assert path.steps[0].contraction.internal_indices == ()


class TestOptimalPathDegenerate:
    """Degenerate inputs now feeding the dedup partitioner: the path
    (and hence the class partition) must be deterministic."""

    def test_repeated_identical_operands_dedup_to_one_class(self):
        # A square chain: both pairwise steps are the same matmul
        # shape, so the workload compiler searches once.
        spec = parse_network("ab,bc,cd->ad", 24)
        nc = NetworkContractor(spec, Cogent(arch="V100", top_k=2))
        assert nc.program.stats.classes == 1
        assert nc.program.stats.dedup_hits == 1
        rng = np.random.default_rng(7)
        m = rng.random((24, 24))
        # The same operand value used three times.
        assert np.allclose(nc.execute(m, m, m), m @ m @ m)

    def test_repeated_identical_operands_path_deterministic(self):
        spec = parse_network("ab,bc,cd->ad", 16)
        first = optimal_path(spec)
        second = optimal_path(spec)
        assert [
            (s.left, s.right, s.result) for s in first.steps
        ] == [(s.left, s.right, s.result) for s in second.steps]
        assert first.total_flops == second.total_flops
        assert first.peak_intermediate == second.peak_intermediate

    def test_all_contracted_scalar_output_rejected_deterministically(
        self,
    ):
        # ab,ab-> sums everything away; the binary kernel template has
        # no scalar output, and the error must be stable call-to-call.
        spec = parse_network("ab,ab->", {"a": 4, "b": 5})
        with pytest.raises(ContractionError, match="scalar"):
            optimal_path(spec)
        with pytest.raises(ContractionError, match="scalar"):
            optimal_path(spec)

    def test_scalar_intermediate_rejected(self):
        # The full inner product of a 3-chain forces a scalar only at
        # the very last step.
        spec = parse_network("ab,bc,ca->", 4)
        with pytest.raises(ContractionError, match="scalar"):
            optimal_path(spec)

    def test_flop_tie_breaks_on_largest_intermediate(self):
        # Brute-forced example: with these extents the 168-FLOP optimum
        # is attained by plans with peak intermediates 9 and 12; the
        # tie-breaker must choose 9.
        spec = parse_network(
            "ab,bc,cd,de->ae",
            {"a": 2, "b": 2, "c": 3, "d": 6, "e": 3},
        )
        path = optimal_path(spec)
        assert path.total_flops == 168
        assert path.peak_intermediate == 9

    def test_flop_tie_execution_still_correct(self, gen):
        sizes = {"a": 2, "b": 2, "c": 3, "d": 6, "e": 3}
        rng = np.random.default_rng(11)
        ops = [
            rng.random((sizes["a"], sizes["b"])),
            rng.random((sizes["b"], sizes["c"])),
            rng.random((sizes["c"], sizes["d"])),
            rng.random((sizes["d"], sizes["e"])),
        ]
        got = contract_network(
            "ab,bc,cd,de->ae", *ops, sizes=sizes, generator=gen
        )
        assert np.allclose(got, ops[0] @ ops[1] @ ops[2] @ ops[3])


class TestExecution:
    def test_chain_matmul(self, gen):
        rng = np.random.default_rng(0)
        a = rng.random((6, 9))
        b = rng.random((9, 4))
        c = rng.random((4, 7))
        got = contract_network("ab,bc,cd->ad", a, b, c, generator=gen)
        assert np.allclose(got, a @ b @ c)

    def test_output_permutation_applied(self, gen):
        rng = np.random.default_rng(1)
        a = rng.random((5, 6))
        b = rng.random((6, 4))
        got = contract_network("ab,bc->ca", a, b, generator=gen)
        assert np.allclose(got, (a @ b).T)

    def test_higher_order_network(self, gen):
        rng = np.random.default_rng(2)
        x = rng.random((5, 4, 6))
        y = rng.random((6, 3, 7))
        z = rng.random((7, 4))
        got = contract_network("abk,kcl,ld->abcd", x, y, z,
                               generator=gen)
        want = np.einsum("abk,kcl,ld->abcd", x, y, z)
        assert np.allclose(got, want)

    def test_four_tensors(self, gen):
        rng = np.random.default_rng(3)
        ops = [rng.random((5, 6)), rng.random((6, 7)),
               rng.random((7, 4)), rng.random((4, 8))]
        got = contract_network("ab,bc,cd,de->ae", *ops, generator=gen)
        want = ops[0] @ ops[1] @ ops[2] @ ops[3]
        assert np.allclose(got, want)

    def test_reference_matches_execute(self, gen):
        spec = parse_network("ab,bc,cd->ad",
                             {"a": 5, "b": 6, "c": 4, "d": 7})
        nc = NetworkContractor(spec, gen)
        rng = np.random.default_rng(4)
        ops = [rng.random((5, 6)), rng.random((6, 4)),
               rng.random((4, 7))]
        assert np.allclose(nc.execute(*ops), nc.reference(*ops))

    def test_wrong_operand_count_rejected(self, gen):
        spec = parse_network("ab,bc->ac", 4)
        nc = NetworkContractor(spec, gen)
        with pytest.raises(ValueError):
            nc.execute(np.zeros((4, 4)))

    def test_predicted_time_positive(self, gen):
        spec = parse_network("ab,bc,cd->ad", 64)
        nc = NetworkContractor(spec, gen)
        assert nc.predicted_time_s() > 0
        assert "network" in nc.summary()


def _path_key(path):
    return (
        path.total_flops,
        path.peak_intermediate,
        tuple(
            (s.left, s.right, s.result, s.contraction.c.indices)
            for s in path.steps
        ),
    )


class TestPathEngineParity:
    """The vectorized bitmask DP must be bit-identical to the oracle."""

    NETWORKS = [
        ("ab,bc,cd->ad", {"a": 8, "b": 512, "c": 4, "d": 8}),
        ("ab,bc,cd->ad", {"a": 8, "b": 4, "c": 512, "d": 8}),
        ("ab,bc,cd,de->ae", {"a": 2, "b": 2, "c": 3, "d": 6, "e": 3}),
        ("ab,bc,cd,de->ae", {"a": 16, "b": 512, "c": 8, "d": 256,
                             "e": 16}),
        ("abk,kcl,ld->abcd", 6),
        ("a,b->ab", {"a": 4, "b": 5}),
        ("ab,bc,cd,de,ef,fg->ag", {"a": 128, "b": 16, "c": 32,
                                   "d": 64, "e": 128, "f": 256,
                                   "g": 2}),
        # Tucker-style core + factor matrices.
        ("abc,ai,bj,ck->ijk", {"a": 6, "b": 7, "c": 8, "i": 3,
                               "j": 4, "k": 5}),
        # All-equal extents: every split ties on FLOPs.
        ("ab,bc,cd,de,ef->af", 4),
    ]

    @pytest.mark.parametrize("expr,sizes", NETWORKS)
    def test_engines_bit_identical(self, expr, sizes):
        spec = parse_network(expr, sizes)
        vec = optimal_path(spec, engine="vectorized")
        obj = optimal_path(spec, engine="object")
        assert _path_key(vec) == _path_key(obj)

    def test_randomized_parity_battery(self):
        import random

        random.seed(20260808)
        checked = 0
        for trial in range(40):
            n = random.randint(2, 7)
            letters = [chr(ord("a") + i) for i in range(n + 1)]
            expr = ",".join(
                letters[i] + letters[i + 1] for i in range(n)
            ) + f"->{letters[0]}{letters[n]}"
            sizes = {l: random.randint(2, 9) for l in letters}
            spec = parse_network(expr, sizes)
            try:
                obj = optimal_path(spec, engine="object")
            except ContractionError:
                with pytest.raises(ContractionError):
                    optimal_path(spec, engine="vectorized")
                continue
            vec = optimal_path(spec, engine="vectorized")
            assert _path_key(vec) == _path_key(obj)
            checked += 1
        assert checked >= 20

    def test_unknown_engine_rejected(self):
        spec = parse_network("ab,bc->ac", 4)
        with pytest.raises(ValueError, match="path engine"):
            optimal_path(spec, engine="columnar")

    def test_tie_break_pinned(self):
        # Fully specified tie-breaking: among (flops, peak)-tied splits
        # the engines take the numerically smallest canonical left-half
        # bitmask.  An all-equal-extent chain ties everywhere; the
        # resulting step sequence is pinned here so any future change
        # to the rule is a visible, deliberate one.
        # The smallest canonical left half of the full set is {0}, so
        # the tree splits {0} | {1,2,3} and recursion emits the right
        # subtree innermost-first.
        spec = parse_network("ab,bc,cd,de->ae", 4)
        for engine in ("vectorized", "object"):
            path = optimal_path(spec, engine=engine)
            assert [
                (s.left, s.right, s.result) for s in path.steps
            ] == [(2, 3, 4), (1, 4, 5), (0, 5, 6)]


class TestMemoryCap:
    SIZES = {"a": 16, "b": 512, "c": 8, "d": 256, "e": 16}

    def test_cap_at_peak_keeps_path(self):
        spec = parse_network("ab,bc,cd,de->ae", self.SIZES)
        base = optimal_path(spec)
        capped = optimal_path(spec, memory_cap=base.peak_intermediate)
        assert _path_key(capped) == _path_key(base)

    def test_cap_below_feasible_raises(self):
        spec = parse_network("ab,bc,cd,de->ae", self.SIZES)
        base = optimal_path(spec)
        for engine in ("vectorized", "object"):
            with pytest.raises(ContractionError, match="memory cap"):
                optimal_path(
                    spec, engine=engine,
                    memory_cap=base.peak_intermediate - 1,
                )

    def test_cap_steers_to_smaller_peak_path(self):
        # The 7200-FLOP optimum contracts (ab,bc) first, peaking at
        # a*c = 100 elements; a 10296-FLOP plan contracting (bc,cd)
        # first peaks at b*d = 99.  Capping at 99 must find it,
        # identically per engine.
        sizes = {"a": 2, "b": 33, "c": 50, "d": 3}
        spec = parse_network("ab,bc,cd->ad", sizes)
        base = optimal_path(spec)
        assert base.total_flops == 7200
        assert base.peak_intermediate == 100
        capped_vec = optimal_path(
            spec, engine="vectorized", memory_cap=99
        )
        capped_obj = optimal_path(spec, engine="object", memory_cap=99)
        assert _path_key(capped_vec) == _path_key(capped_obj)
        assert capped_vec.peak_intermediate == 99
        assert capped_vec.total_flops == 10296

    def test_capped_path_still_executes_correctly(self, gen):
        sizes = {"a": 2, "b": 33, "c": 50, "d": 3}
        spec = parse_network("ab,bc,cd->ad", sizes)
        path = optimal_path(spec, memory_cap=99)
        nc = NetworkContractor(spec, gen, path=path)
        rng = np.random.default_rng(5)
        ops = [
            rng.random((2, 33)), rng.random((33, 50)),
            rng.random((50, 3)),
        ]
        assert np.allclose(nc.execute(*ops), ops[0] @ ops[1] @ ops[2])


class TestDegenerateNetworks:
    def test_hyperedge_index_rejected_as_batch(self):
        # An index shared by >= 3 tensors survives every pairwise step
        # it touches, so some step sees it in all three tensors — a
        # batch dimension the binary kernel template rejects.  Both
        # engines must agree.
        spec = parse_network("ab,ac,ad->bcd", 4)
        for engine in ("vectorized", "object"):
            with pytest.raises(ContractionError, match="batch"):
                optimal_path(spec, engine=engine)

    def test_disconnected_index_rejected(self):
        # 'c'/'d' appear once and not in the output: no valid
        # contraction structure, rejected identically by both engines.
        spec = parse_network("ab,cd->ab", 4)
        for engine in ("vectorized", "object"):
            with pytest.raises(ContractionError, match="exactly two"):
                optimal_path(spec, engine=engine)

    def test_planned_peak_recorded_on_path(self, gen):
        spec = parse_network("ab,bc,cd->ad", 8)
        nc = NetworkContractor(spec, gen)
        assert nc.path.planned_peak_bytes is not None
        assert nc.path.planned_peak_bytes >= 0
        assert (
            nc.path.planned_peak_bytes
            == nc.memory_plan.planned_peak_bytes
        )
