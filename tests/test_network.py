"""Tests for contraction networks (repro.core.network)."""

import numpy as np
import pytest

from repro import Cogent
from repro.core.ir import ContractionError
from repro.core.network import (
    NetworkContractor,
    contract_network,
    optimal_path,
    parse_network,
)


@pytest.fixture(scope="module")
def gen():
    return Cogent(arch="V100", top_k=2)


class TestParse:
    def test_basic(self):
        spec = parse_network("ab,bc,cd->ad", 8)
        assert len(spec.inputs) == 3
        assert spec.output == ("a", "d")

    def test_sizes_dict(self):
        spec = parse_network("ab,bc->ac", {"a": 2, "b": 3, "c": 4})
        assert spec.sizes["b"] == 3

    def test_missing_arrow_rejected(self):
        with pytest.raises(ContractionError):
            parse_network("ab,bc", 4)

    def test_single_tensor_rejected(self):
        with pytest.raises(ContractionError):
            parse_network("ab->ab", 4)

    def test_unknown_output_index_rejected(self):
        with pytest.raises(ContractionError):
            parse_network("ab,bc->az", 4)


class TestOptimalPath:
    def test_chain_order_respects_sizes(self):
        # With b huge, contracting (A,B) first shrinks the problem.
        spec = parse_network(
            "ab,bc,cd->ad", {"a": 8, "b": 512, "c": 4, "d": 8}
        )
        path = optimal_path(spec)
        first = path.steps[0]
        assert {first.left, first.right} == {0, 1}

    def test_reverse_skew_flips_order(self):
        spec = parse_network(
            "ab,bc,cd->ad", {"a": 8, "b": 4, "c": 512, "d": 8}
        )
        path = optimal_path(spec)
        first = path.steps[0]
        assert {first.left, first.right} == {1, 2}

    def test_total_flops_counts_both_steps(self):
        spec = parse_network(
            "ab,bc,cd->ad", {"a": 4, "b": 4, "c": 4, "d": 4}
        )
        path = optimal_path(spec)
        assert path.total_flops == 2 * (4 ** 3) * 2

    def test_steps_form_valid_contractions(self):
        spec = parse_network("abk,kcl,ld->abcd", 6)
        path = optimal_path(spec)
        for step in path.steps:
            assert step.contraction.flops > 0

    def test_four_tensor_path_length(self):
        spec = parse_network("ab,bc,cd,de->ae", 6)
        assert len(optimal_path(spec).steps) == 3

    def test_disconnected_outer_product_allowed(self):
        # a,b networks with no shared index: steps become outer
        # products, which the binary IR supports.
        spec = parse_network("a,b->ab", {"a": 4, "b": 5})
        path = optimal_path(spec)
        assert len(path.steps) == 1
        assert path.steps[0].contraction.internal_indices == ()


class TestOptimalPathDegenerate:
    """Degenerate inputs now feeding the dedup partitioner: the path
    (and hence the class partition) must be deterministic."""

    def test_repeated_identical_operands_dedup_to_one_class(self):
        # A square chain: both pairwise steps are the same matmul
        # shape, so the workload compiler searches once.
        spec = parse_network("ab,bc,cd->ad", 24)
        nc = NetworkContractor(spec, Cogent(arch="V100", top_k=2))
        assert nc.program.stats.classes == 1
        assert nc.program.stats.dedup_hits == 1
        rng = np.random.default_rng(7)
        m = rng.random((24, 24))
        # The same operand value used three times.
        assert np.allclose(nc.execute(m, m, m), m @ m @ m)

    def test_repeated_identical_operands_path_deterministic(self):
        spec = parse_network("ab,bc,cd->ad", 16)
        first = optimal_path(spec)
        second = optimal_path(spec)
        assert [
            (s.left, s.right, s.result) for s in first.steps
        ] == [(s.left, s.right, s.result) for s in second.steps]
        assert first.total_flops == second.total_flops
        assert first.peak_intermediate == second.peak_intermediate

    def test_all_contracted_scalar_output_rejected_deterministically(
        self,
    ):
        # ab,ab-> sums everything away; the binary kernel template has
        # no scalar output, and the error must be stable call-to-call.
        spec = parse_network("ab,ab->", {"a": 4, "b": 5})
        with pytest.raises(ContractionError, match="scalar"):
            optimal_path(spec)
        with pytest.raises(ContractionError, match="scalar"):
            optimal_path(spec)

    def test_scalar_intermediate_rejected(self):
        # The full inner product of a 3-chain forces a scalar only at
        # the very last step.
        spec = parse_network("ab,bc,ca->", 4)
        with pytest.raises(ContractionError, match="scalar"):
            optimal_path(spec)

    def test_flop_tie_breaks_on_largest_intermediate(self):
        # Brute-forced example: with these extents the 168-FLOP optimum
        # is attained by plans with peak intermediates 9 and 12; the
        # tie-breaker must choose 9.
        spec = parse_network(
            "ab,bc,cd,de->ae",
            {"a": 2, "b": 2, "c": 3, "d": 6, "e": 3},
        )
        path = optimal_path(spec)
        assert path.total_flops == 168
        assert path.peak_intermediate == 9

    def test_flop_tie_execution_still_correct(self, gen):
        sizes = {"a": 2, "b": 2, "c": 3, "d": 6, "e": 3}
        rng = np.random.default_rng(11)
        ops = [
            rng.random((sizes["a"], sizes["b"])),
            rng.random((sizes["b"], sizes["c"])),
            rng.random((sizes["c"], sizes["d"])),
            rng.random((sizes["d"], sizes["e"])),
        ]
        got = contract_network(
            "ab,bc,cd,de->ae", *ops, sizes=sizes, generator=gen
        )
        assert np.allclose(got, ops[0] @ ops[1] @ ops[2] @ ops[3])


class TestExecution:
    def test_chain_matmul(self, gen):
        rng = np.random.default_rng(0)
        a = rng.random((6, 9))
        b = rng.random((9, 4))
        c = rng.random((4, 7))
        got = contract_network("ab,bc,cd->ad", a, b, c, generator=gen)
        assert np.allclose(got, a @ b @ c)

    def test_output_permutation_applied(self, gen):
        rng = np.random.default_rng(1)
        a = rng.random((5, 6))
        b = rng.random((6, 4))
        got = contract_network("ab,bc->ca", a, b, generator=gen)
        assert np.allclose(got, (a @ b).T)

    def test_higher_order_network(self, gen):
        rng = np.random.default_rng(2)
        x = rng.random((5, 4, 6))
        y = rng.random((6, 3, 7))
        z = rng.random((7, 4))
        got = contract_network("abk,kcl,ld->abcd", x, y, z,
                               generator=gen)
        want = np.einsum("abk,kcl,ld->abcd", x, y, z)
        assert np.allclose(got, want)

    def test_four_tensors(self, gen):
        rng = np.random.default_rng(3)
        ops = [rng.random((5, 6)), rng.random((6, 7)),
               rng.random((7, 4)), rng.random((4, 8))]
        got = contract_network("ab,bc,cd,de->ae", *ops, generator=gen)
        want = ops[0] @ ops[1] @ ops[2] @ ops[3]
        assert np.allclose(got, want)

    def test_reference_matches_execute(self, gen):
        spec = parse_network("ab,bc,cd->ad",
                             {"a": 5, "b": 6, "c": 4, "d": 7})
        nc = NetworkContractor(spec, gen)
        rng = np.random.default_rng(4)
        ops = [rng.random((5, 6)), rng.random((6, 4)),
               rng.random((4, 7))]
        assert np.allclose(nc.execute(*ops), nc.reference(*ops))

    def test_wrong_operand_count_rejected(self, gen):
        spec = parse_network("ab,bc->ac", 4)
        nc = NetworkContractor(spec, gen)
        with pytest.raises(ValueError):
            nc.execute(np.zeros((4, 4)))

    def test_predicted_time_positive(self, gen):
        spec = parse_network("ab,bc,cd->ad", 64)
        nc = NetworkContractor(spec, gen)
        assert nc.predicted_time_s() > 0
        assert "network" in nc.summary()
