"""Tests for the address-trace transaction counter (repro.gpu.memory)."""

import pytest

from repro.core.costmodel import CostModel
from repro.core.mapping import config_from_spec
from repro.core.parser import parse
from repro.core.plan import KernelPlan
from repro.gpu.memory import (
    TransactionCounter,
    VectorizedReplay,
    count_transactions,
    count_transactions_reference,
    sampled_is_exact,
)


def make_plan(c, **spec):
    return KernelPlan(c, config_from_spec(c, **spec))


class TestMatmulHandCounts:
    """32x32x32 matmul with 16x16x16 tiles: fully analysable by hand."""

    @pytest.fixture
    def plan(self):
        c = parse("ab-ak-kb", {"a": 32, "b": 32, "k": 32})
        return make_plan(
            c, tb_x=[("a", 16)], tb_y=[("b", 16)], tb_k=[("k", 16)]
        )

    def test_load_a_one_tile(self, plan):
        counter = TransactionCounter(plan)
        # A tile is 16x16 doubles; each 16-element column is contiguous
        # (run 16 = 128 B).  256 threads load 256 elements in one
        # iteration: 16 segments of 128 B -> at least 16 transactions.
        txns = counter.load_transactions(plan.contraction.a, 0, 0)
        assert txns == 16

    def test_store_c_one_block(self, plan):
        counter = TransactionCounter(plan)
        # Each of 16 rows' store per register element: REG=1x1, so one
        # issue; each warp of 32 threads covers 2 columns of 16 -> 2
        # lines per warp, 8 warps -> 16.
        assert counter.store_transactions(0) == 16

    def test_totals_scale_with_blocks_and_steps(self, plan):
        measured = count_transactions(plan, exact=True)
        # 4 blocks, 2 steps.
        assert measured.load_a == 16 * 4 * 2
        assert measured.load_b == 16 * 4 * 2
        assert measured.store_c == 16 * 4

    def test_sampled_equals_exact_when_divisible(self, plan):
        assert count_transactions(plan, exact=True) == \
            count_transactions(plan, exact=False)


class TestModelAgreement:
    """The analytic model must track measured counts closely when tiles
    divide extents, and never undercount by more than the edge effects
    when they don't."""

    @pytest.mark.parametrize("expr,sizes", [
        ("ab-ak-kb", {"a": 32, "b": 32, "k": 32}),
        ("abc-adc-bd", {"a": 16, "b": 8, "c": 4, "d": 8}),
        ("abcd-aebf-dfce", {"a": 16, "b": 4, "c": 4, "d": 16,
                            "e": 4, "f": 4}),
    ])
    def test_exact_match_divisible(self, expr, sizes):
        c = parse(expr, sizes)
        spec = {"tb_x": [(c.c.fvi, min(16, sizes[c.c.fvi]))]}
        y_ext = c.externals_of(c.y_input)
        if y_ext:
            spec["tb_y"] = [(y_ext[0], min(8, sizes[y_ext[0]]))]
        if c.internal_indices:
            i0 = c.internal_indices[0]
            spec["tb_k"] = [(i0, min(4, sizes[i0]))]
        plan = make_plan(c, **spec)
        measured = count_transactions(plan, exact=True)
        model = CostModel().estimate(plan)
        # Within 2x in both directions for these clean layouts.
        assert model.total <= 2 * measured.total
        assert measured.total <= 2 * model.total

    def test_misalignment_makes_measured_exceed_model(self):
        """The paper's model assumes every 128 B segment is aligned; a
        30-double row pitch (240 B) misaligns segments so the replayed
        addresses straddle extra cache lines.  The ground-truth counter
        must therefore exceed the analytic count here — this quantifies
        the model's stated simplification."""
        c = parse("ab-ak-kb", {"a": 30, "b": 30, "k": 30})
        plan = make_plan(
            c, tb_x=[("a", 16)], tb_y=[("b", 16)], tb_k=[("k", 16)]
        )
        measured = count_transactions(plan, exact=True)
        model = CostModel().estimate(plan)
        assert measured.total > model.total
        # ... but still within the 2x the misalignment can introduce.
        assert measured.total <= 2 * model.total


class TestCoalescingSensitivity:
    def test_uncoalesced_layout_measures_more(self):
        sizes = {"a": 16, "b": 16, "k": 16}
        good = parse("ab-ak-kb", sizes)   # A FVI = a (mapped to TBx)
        plan_good = make_plan(
            good, tb_x=[("a", 16)], tb_y=[("b", 16)], tb_k=[("k", 16)]
        )
        bad = parse("ab-ka-kb", sizes)    # A FVI = k (serial dim)
        plan_bad = make_plan(
            bad, tb_x=[("a", 16)], tb_y=[("b", 16)], tb_k=[("k", 1)]
        )
        good_txns = count_transactions(plan_good, exact=True)
        bad_txns = count_transactions(plan_bad, exact=True)
        assert bad_txns.load_a > good_txns.load_a

    def test_sp_halves_transactions_for_wide_rows(self):
        c = parse("ab-ak-kb", {"a": 32, "b": 32, "k": 32})
        cfg = config_from_spec(
            c, tb_x=[("a", 32)], tb_y=[("b", 8)], tb_k=[("k", 8)]
        )
        dp = count_transactions(KernelPlan(c, cfg, 8), exact=False)
        sp = count_transactions(KernelPlan(c, cfg, 4), exact=False)
        assert sp.total < dp.total


class TestBounds:
    def test_out_of_bounds_lanes_issue_nothing(self):
        c = parse("ab-ak-kb", {"a": 17, "b": 17, "k": 17})
        plan = make_plan(
            c, tb_x=[("a", 16)], tb_y=[("b", 16)], tb_k=[("k", 16)]
        )
        measured = count_transactions(plan, exact=True)
        # The edge blocks have 1 valid lane per row; totals must stay
        # strictly below the 4-full-blocks figure.
        full = parse("ab-ak-kb", {"a": 32, "b": 32, "k": 32})
        plan_full = make_plan(
            full, tb_x=[("a", 16)], tb_y=[("b", 16)], tb_k=[("k", 16)]
        )
        full_measured = count_transactions(plan_full, exact=True)
        assert measured.total < full_measured.total

    def test_totals_positive(self):
        c = parse("ab-ak-kb", {"a": 8, "b": 8, "k": 8})
        plan = make_plan(
            c, tb_x=[("a", 8)], tb_y=[("b", 8)], tb_k=[("k", 8)]
        )
        measured = count_transactions(plan, exact=True)
        assert measured.load_a > 0
        assert measured.store_c > 0
        assert measured.bytes == measured.total * 128


#: (expr, sizes, spec) covering register tiles, multi-index TB_K, and
#: non-divisible boundary tiles on every axis kind.
REPLAY_CASES = [
    ("ab-ak-kb", {"a": 32, "b": 32, "k": 32},
     dict(tb_x=[("a", 16)], tb_y=[("b", 16)], tb_k=[("k", 16)])),
    ("ab-ak-kb", {"a": 17, "b": 19, "k": 23},
     dict(tb_x=[("a", 8)], tb_y=[("b", 8)], tb_k=[("k", 8)])),
    ("abc-adc-bd", {"a": 12, "b": 10, "c": 6, "d": 9},
     dict(tb_x=[("a", 8)], reg_x=[("c", 2)], tb_y=[("b", 4)],
          tb_k=[("d", 4)])),
    ("abcd-aebf-dfce", {"a": 10, "b": 6, "c": 5, "d": 7, "e": 4, "f": 3},
     dict(tb_x=[("a", 8)], reg_x=[("b", 2)], tb_y=[("d", 4)],
          reg_y=[("c", 2)], tb_k=[("e", 2), ("f", 2)])),
]


class TestVectorizedReplay:
    """The batched replay must be bit-for-bit equal to the loop oracle."""

    @pytest.mark.parametrize("dtype_bytes", [4, 8])
    @pytest.mark.parametrize("expr,sizes,spec", REPLAY_CASES)
    def test_matches_loop_reference(self, expr, sizes, spec, dtype_bytes):
        c = parse(expr, sizes)
        plan = KernelPlan(c, config_from_spec(c, **spec), dtype_bytes)
        assert VectorizedReplay(plan).count() == \
            count_transactions_reference(plan)

    def test_exact_true_uses_vectorized_path(self):
        c = parse("ab-ak-kb", {"a": 17, "b": 19, "k": 23})
        plan = make_plan(
            c, tb_x=[("a", 8)], tb_y=[("b", 8)], tb_k=[("k", 8)]
        )
        assert count_transactions(plan, exact=True) == \
            count_transactions_reference(plan)


class TestAutoMode:
    def test_auto_replays_exactly_on_boundary_tiles(self):
        c = parse("ab-ak-kb", {"a": 17, "b": 19, "k": 23})
        plan = make_plan(
            c, tb_x=[("a", 8)], tb_y=[("b", 8)], tb_k=[("k", 8)]
        )
        assert not sampled_is_exact(plan)
        auto = count_transactions(plan, exact="auto")
        assert auto == count_transactions(plan, exact=True)
        # The sampled estimate over-counts here (the original boundary
        # bug): one interior block scaled by num_blocks.
        assert count_transactions(plan, exact=False).total > auto.total

    def test_auto_replays_exactly_on_misaligned_tiles(self):
        # Tiles divide the extents, but an 8-double TB_X tile (64 B)
        # shifts successive blocks within a 128 B line, so block 0 is
        # not representative of the whole grid.
        c = parse("ab-ak-kb", {"a": 32, "b": 32, "k": 32})
        plan = make_plan(
            c, tb_x=[("a", 8)], tb_y=[("b", 8)], tb_k=[("k", 8)]
        )
        assert not sampled_is_exact(plan)
        assert count_transactions(plan, exact="auto") == \
            count_transactions(plan, exact=True)

    def test_auto_samples_on_divisible_aligned_tiles(self):
        c = parse("ab-ak-kb", {"a": 32, "b": 32, "k": 32})
        plan = make_plan(
            c, tb_x=[("a", 16)], tb_y=[("b", 16)], tb_k=[("k", 16)]
        )
        assert sampled_is_exact(plan)
        auto = count_transactions(plan, exact="auto")
        assert auto == count_transactions(plan, exact=False)
        assert auto == count_transactions(plan, exact=True)

    def test_sampled_equals_exact_when_divisible_and_aligned(self):
        c = parse("abc-adc-bd", {"a": 16, "b": 8, "c": 4, "d": 8})
        plan = make_plan(
            c, tb_x=[("a", 16)], tb_y=[("b", 8)], tb_k=[("d", 4)]
        )
        assert sampled_is_exact(plan)
        assert count_transactions(plan, exact=False) == \
            count_transactions(plan, exact=True)

    def test_invalid_mode_rejected(self):
        c = parse("ab-ak-kb", {"a": 8, "b": 8, "k": 8})
        plan = make_plan(
            c, tb_x=[("a", 8)], tb_y=[("b", 8)], tb_k=[("k", 8)]
        )
        with pytest.raises(ValueError):
            count_transactions(plan, exact="always")
