"""Tests for kernel configurations (repro.core.mapping)."""

import pytest

from repro.core.mapping import (
    ConfigError,
    Dim,
    IndexMapping,
    KernelConfig,
    config_from_spec,
)
from repro.core.parser import parse


@pytest.fixture
def eq1():
    return parse("abcd-aebf-dfce", 16)


def _config(eq1, **kw):
    return config_from_spec(eq1, **kw)


class TestIndexMapping:
    def test_tile_must_be_positive(self):
        with pytest.raises(ConfigError):
            IndexMapping("a", Dim.TB_X, 0)

    def test_str(self):
        assert str(IndexMapping("a", Dim.TB_X, 8)) == "a->TBx:8"


class TestDerivedGeometry:
    def test_tb_sizes_multiply(self, eq1):
        cfg = _config(
            eq1, tb_x=[("a", 4), ("b", 2)], tb_y=[("c", 8)],
            tb_k=[("e", 4), ("f", 2)],
        )
        assert cfg.tb_x_size == 8
        assert cfg.tb_y_size == 8
        assert cfg.threads_per_block == 64
        assert cfg.tb_k_tile == 8

    def test_reg_sizes(self, eq1):
        cfg = _config(
            eq1, tb_x=[("a", 4)], tb_y=[("c", 4)],
            reg_x=[("b", 4)], reg_y=[("d", 2)],
        )
        assert cfg.reg_x_size == 4
        assert cfg.reg_y_size == 2
        assert cfg.block_tile_x == 16
        assert cfg.block_tile_y == 8

    def test_empty_dims_default_to_one(self, eq1):
        cfg = _config(eq1, tb_x=[("a", 4)])
        assert cfg.tb_y_size == 1
        assert cfg.reg_x_size == 1
        assert cfg.reg_y_size == 1

    def test_smem_elements(self, eq1):
        cfg = _config(
            eq1, tb_x=[("a", 4)], tb_y=[("c", 4)],
            reg_x=[("b", 2)], reg_y=[("d", 2)], tb_k=[("e", 4)],
        )
        # (4*2 + 4*2) * 4 = 64
        assert cfg.smem_elements() == 64
        assert cfg.smem_bytes(8) == 512

    def test_registers_scale_with_dtype(self, eq1):
        cfg = _config(eq1, tb_x=[("a", 4)], reg_x=[("b", 4)],
                      reg_y=[("d", 4)])
        assert cfg.registers_per_thread(8) > cfg.registers_per_thread(4)

    def test_num_thread_blocks(self, eq1):
        cfg = _config(eq1, tb_x=[("a", 4)], tb_y=[("c", 8)])
        # a: 16/4=4, c: 16/8=2, b and d grid tile 1: 16 each.
        assert cfg.num_thread_blocks(eq1) == 4 * 2 * 16 * 16

    def test_num_steps(self, eq1):
        cfg = _config(eq1, tb_k=[("e", 4), ("f", 8)])
        assert cfg.num_steps(eq1) == 4 * 2

    def test_num_tiles_ceil(self, eq1):
        cfg = _config(eq1, tb_x=[("a", 5)])
        assert cfg.num_tiles("a", eq1) == 4  # ceil(16/5)


class TestValidation:
    def test_duplicate_mapping_rejected(self):
        with pytest.raises(ConfigError):
            KernelConfig((
                IndexMapping("a", Dim.TB_X, 4),
                IndexMapping("a", Dim.REG_X, 2),
            ))

    def test_internal_on_external_dim_rejected(self, eq1):
        with pytest.raises(ConfigError):
            _config(eq1, tb_x=[("e", 4)])

    def test_external_on_tbk_rejected(self, eq1):
        with pytest.raises(ConfigError):
            _config(eq1, tb_k=[("a", 4)])

    def test_y_side_external_on_tbx_rejected(self, eq1):
        # c is an external of B (the y-side input for Eq. 1).
        with pytest.raises(ConfigError):
            _config(eq1, tb_x=[("c", 4)])

    def test_x_side_external_on_regy_rejected(self, eq1):
        with pytest.raises(ConfigError):
            _config(eq1, reg_y=[("b", 4)])

    def test_tile_exceeding_extent_rejected(self, eq1):
        with pytest.raises(ConfigError):
            _config(eq1, tb_x=[("a", 32)])

    def test_grid_tile_must_be_one(self, eq1):
        with pytest.raises(ConfigError):
            _config(eq1, grid=[("a", 2)])

    def test_missing_index_rejected(self, eq1):
        cfg = KernelConfig((IndexMapping("a", Dim.TB_X, 4),))
        with pytest.raises(ConfigError):
            cfg.validate_for(eq1)

    def test_unknown_index_rejected(self, eq1):
        cfg = _config(eq1)
        extra = KernelConfig(
            cfg.mappings + (IndexMapping("z", Dim.GRID, 1),)
        )
        with pytest.raises(ConfigError):
            extra.validate_for(eq1)


class TestFromSpec:
    def test_fill_defaults_maps_everything(self, eq1):
        cfg = _config(eq1, tb_x=[("a", 4)])
        mapped = {m.index for m in cfg.mappings}
        assert mapped == set(eq1.all_indices)

    def test_defaults_put_externals_on_grid(self, eq1):
        cfg = _config(eq1, tb_x=[("a", 4)])
        assert cfg.mapping_of("c").dim is Dim.GRID
        assert cfg.mapping_of("c").tile == 1

    def test_defaults_put_internals_on_tbk(self, eq1):
        cfg = _config(eq1, tb_x=[("a", 4)])
        assert cfg.mapping_of("e").dim is Dim.TB_K

    def test_order_within_dim_preserved(self, eq1):
        cfg = _config(eq1, tb_x=[("a", 2), ("b", 2)])
        assert cfg.indices_on(Dim.TB_X) == ("a", "b")

    def test_describe_mentions_all_used_dims(self, eq1):
        cfg = _config(eq1, tb_x=[("a", 4)], tb_k=[("e", 2)])
        desc = cfg.describe()
        assert "TBx=[a:4]" in desc
        assert "TBk=[e:2" in desc

    def test_mapping_of_unknown_raises(self, eq1):
        with pytest.raises(ConfigError):
            _config(eq1).mapping_of("zz")
