"""Tests for the pruning rules (repro.core.constraints)."""

import pytest

from repro.core.constraints import ConstraintChecker, ConstraintPolicy
from repro.core.mapping import config_from_spec
from repro.core.parser import parse


@pytest.fixture
def eq1():
    return parse("abcd-aebf-dfce", 32)


@pytest.fixture
def checker(v100):
    return ConstraintChecker(v100, dtype_bytes=8)


def good_config(eq1):
    return config_from_spec(
        eq1,
        tb_x=[("a", 16)],
        tb_y=[("d", 16)],
        reg_x=[("b", 4)],
        reg_y=[("c", 4)],
        tb_k=[("e", 8)],
    )


class TestHardware:
    def test_good_config_is_feasible(self, checker, eq1):
        report = checker.check_config(eq1, good_config(eq1))
        assert report.feasible
        assert report.accepted

    def test_smem_overflow_rejected(self, checker, eq1):
        cfg = config_from_spec(
            eq1,
            tb_x=[("a", 32)], tb_y=[("d", 32)],
            reg_x=[("b", 8)], reg_y=[("c", 8)],
            tb_k=[("e", 32), ("f", 4)],
        )
        report = checker.check_config(eq1, cfg)
        assert not report.feasible
        assert any("shared memory" in v for v in report.hardware_violations)

    def test_too_many_threads_rejected(self, checker, eq1):
        cfg = config_from_spec(
            eq1, tb_x=[("a", 32), ("b", 32)], tb_y=[("d", 32)],
        )
        report = checker.check_config(eq1, cfg)
        assert not report.feasible
        assert any("threads" in v for v in report.hardware_violations)

    def test_register_overflow_rejected(self, v100, eq1):
        checker = ConstraintChecker(v100, dtype_bytes=8)
        cfg = config_from_spec(
            eq1, tb_x=[("a", 4)], tb_y=[("d", 4)],
            reg_x=[("b", 16)], reg_y=[("c", 8)],
        )
        report = checker.check_config(eq1, cfg)
        assert not report.feasible
        assert any("register" in v for v in report.hardware_violations)


class TestPerformance:
    def test_output_fvi_must_lead_tbx(self, checker, eq1):
        cfg = config_from_spec(
            eq1,
            tb_x=[("b", 16)],  # a relegated to the grid
            tb_y=[("d", 16)],
            tb_k=[("e", 8)],
        )
        report = checker.check_config(eq1, cfg)
        assert report.feasible
        assert any("output FVI" in v
                   for v in report.performance_violations)

    def test_input_fvi_needs_coalescing_tile(self, checker, eq1):
        # d is B's FVI; mapping it to the grid gives it tile 1.
        cfg = config_from_spec(
            eq1,
            tb_x=[("a", 16)], tb_y=[("c", 16)],
            tb_k=[("e", 8)],
        )
        report = checker.check_config(eq1, cfg)
        assert any("coalescing floor" in v
                   for v in report.performance_violations)

    def test_min_blocks_rule(self, v100):
        tiny = parse("ab-ak-kb", {"a": 32, "b": 32, "k": 64})
        checker = ConstraintChecker(
            v100, policy=ConstraintPolicy(min_blocks_per_sm=4.0)
        )
        cfg = config_from_spec(
            tiny, tb_x=[("a", 32)], tb_y=[("b", 32)], tb_k=[("k", 8)]
        )
        report = checker.check_config(tiny, cfg)
        assert any("load-balance" in v
                   for v in report.performance_violations)

    def test_min_blocks_adapts_to_tiny_problems(self, v100):
        # The threshold is capped at the number of *possible* blocks:
        # a config launching every possible block must not be rejected,
        # even though that is far below the SM count.
        tiny = parse("ab-ak-kb", {"a": 4, "b": 4, "k": 4})
        checker = ConstraintChecker(v100)
        cfg = config_from_spec(
            tiny, tb_x=[("a", 2)], tb_y=[("b", 2)], tb_k=[("k", 4)]
        )
        # 2*2 tiles -> 4 blocks = every possible block at these tiles is
        # fewer than max possible (16), so only full tile-1 mapping hits
        # the cap.
        grid_cfg = config_from_spec(tiny, tb_k=[("k", 4)])
        report = checker.check_config(tiny, grid_cfg)
        assert not any("load-balance" in v
                       for v in report.performance_violations)

    def test_min_threads_rule(self, checker, eq1):
        cfg = config_from_spec(
            eq1, tb_x=[("a", 4)], tb_y=[("d", 4)], tb_k=[("e", 8)]
        )
        report = checker.check_config(eq1, cfg)
        assert any("threads/block" in v
                   for v in report.performance_violations)

    def test_occupancy_floor(self, v100, eq1):
        checker = ConstraintChecker(
            v100, policy=ConstraintPolicy(min_occupancy=0.9)
        )
        report = checker.check_config(eq1, good_config(eq1))
        assert any("occupancy" in v
                   for v in report.performance_violations)

    def test_max_steps_guard_disabled_by_default(self, checker, eq1):
        cfg = config_from_spec(
            eq1, tb_x=[("a", 16)], tb_y=[("d", 16)],
            tb_k=[("e", 1), ("f", 1)],
        )
        report = checker.check_config(eq1, cfg)
        assert not any("steps" in v for v in report.performance_violations)

    def test_max_steps_guard_enabled(self, v100, eq1):
        checker = ConstraintChecker(
            v100, policy=ConstraintPolicy(max_steps=4)
        )
        cfg = config_from_spec(
            eq1, tb_x=[("a", 16)], tb_y=[("d", 16)],
            tb_k=[("e", 1), ("f", 1)],
        )
        report = checker.check_config(eq1, cfg)
        assert any("steps" in v for v in report.performance_violations)


class TestReport:
    def test_accepted_implies_feasible(self, checker, eq1):
        report = checker.check_config(eq1, good_config(eq1))
        assert report.accepted and report.feasible

    def test_hardware_failure_skips_perf_checks(self, checker, eq1):
        cfg = config_from_spec(
            eq1, tb_x=[("a", 32), ("b", 32)], tb_y=[("d", 32)],
        )
        report = checker.check_config(eq1, cfg)
        assert report.performance_violations == []
