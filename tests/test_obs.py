"""Tests for the observability subsystem (repro.obs)."""

import json

import pytest

from repro import obs
from repro.core.generator import Cogent
from repro.obs.spans import Span, Tracer
from repro.tccg import get


def _generate_traced(search_workers):
    """Run one generation under tracing; return the session."""
    contraction = get("ttm_mode1").contraction()
    with obs.tracing(meta={"command": "test"}) as session:
        generator = Cogent(top_k=4)
        generator.workers = search_workers
        generator.generate(contraction)
    return session


class TestDisabledPath:
    def test_disabled_by_default(self):
        assert not obs.enabled()
        assert obs.session() is None

    def test_span_is_shared_noop_singleton(self):
        # The hot paths call obs.span() per stage; when tracing is off
        # this must not allocate anything.
        assert obs.span("a") is obs.span("b")
        with obs.span("anything"):
            pass

    def test_helpers_are_noops(self):
        obs.inc("x")
        obs.gauge("y", 1.0)
        obs.observe("z", 0.5)
        obs.record("w", 0.1)
        obs.absorb({"name": "worker", "children": []})


class TestSpans:
    def test_aggregation_by_name(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("stage"):
                pass
        tracer.close()
        assert tracer.root.children["stage"].count == 3
        assert len(tracer.root.children) == 1

    def test_nesting(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        tracer.close()
        outer = tracer.root.children["outer"]
        assert "inner" in outer.children
        assert "inner" not in tracer.root.children

    def test_record_normalises_parallel_work(self):
        tracer = Tracer()
        node = tracer.record("pool", 4.0, workers=4)
        assert node.wall_s == pytest.approx(1.0)
        assert node.work_s == pytest.approx(4.0)
        assert node.meta["workers"] == 4

    def test_self_time_telescopes_to_root(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
        tracer.close()
        total_self = sum(
            span.self_wall_s for _, span in tracer.root.walk()
        )
        assert total_self == pytest.approx(tracer.root.wall_s, rel=1e-6)

    def test_roundtrip_and_merge(self):
        tracer = Tracer("worker")
        with tracer.span("stage"):
            with tracer.span("sub"):
                pass
        tracer.close()
        payload = tracer.as_dict()
        clone = Span.from_dict(payload)
        assert clone.paths() == tracer.root.paths()

        coordinator = Tracer()
        coordinator.absorb(payload, workers=2)
        stage = coordinator.root.children["stage"]
        assert stage.wall_s == pytest.approx(
            tracer.root.children["stage"].wall_s / 2
        )
        assert stage.work_s == pytest.approx(
            tracer.root.children["stage"].work_s
        )

    def test_merge_rejects_name_mismatch(self):
        with pytest.raises(ValueError):
            Span("a").merge(Span("b"))


class TestPipelineTracing:
    def test_pipeline_spans_present(self):
        session = _generate_traced(search_workers=1)
        paths = session.tracer.root.paths()
        assert "run/generate" in paths
        assert "run/generate/search" in paths
        assert "run/generate/search/enumerate" in paths
        assert "run/generate/search/prune" in paths
        assert "run/generate/search/rank" in paths
        assert "run/generate/simulate" in paths

    def test_span_tree_deterministic_across_workers(self):
        serial = _generate_traced(search_workers=1)
        parallel = _generate_traced(search_workers=4)
        assert serial.tracer.root.paths() == parallel.tracer.root.paths()

    def test_counters_deterministic_across_workers(self):
        # Outcome counters must match exactly.  Per-rule check counts
        # (the checker adaptively reorders rules per shard) and memo
        # hit/miss splits (each shard has its own memo) legitimately
        # differ; timings always do.
        def outcomes(session):
            return {
                k: v for k, v in session.metrics.counters.items()
                if k.startswith(("search.", "generate."))
                and not k.endswith("_s")
            }

        serial = _generate_traced(search_workers=1)
        parallel = _generate_traced(search_workers=4)
        assert outcomes(serial) == outcomes(parallel)

    def test_metrics_absorbed(self):
        session = _generate_traced(search_workers=1)
        counters = session.metrics.counters
        assert counters["search.searches"] >= 1
        assert counters["search.configs_checked"] > 0
        assert counters["generate.contractions"] == 1
        assert any(k.startswith("constraints.") for k in counters)

    def test_self_times_near_wall(self):
        # Acceptance criterion: per-stage self-times sum to within 5%
        # of the traced wall time.
        session = _generate_traced(search_workers=1)
        root = session.tracer.root
        total_self = sum(s.self_wall_s for _, s in root.walk())
        assert total_self == pytest.approx(root.wall_s, rel=0.05)


class TestExport:
    def test_payload_schema_valid(self):
        session = _generate_traced(search_workers=1)
        payload = session.payload()
        assert payload["schema"] == obs.SCHEMA
        assert obs.validate_payload(payload) == []

    def test_payload_json_serialisable(self, tmp_path):
        session = _generate_traced(search_workers=1)
        path = tmp_path / "metrics.json"
        session.write_json(path)
        payload = json.loads(path.read_text())
        assert obs.validate_payload(payload) == []

    def test_validator_rejects_bad_payloads(self):
        assert obs.validate_payload({"schema": "nope"}) != []
        assert obs.validate_payload(
            {"schema": obs.SCHEMA, "trace": {"name": "run"},
             "metrics": {"counters": {"x": "NaN-ish"}}}
        ) != []

    def test_flamegraph_text(self):
        session = _generate_traced(search_workers=1)
        text = session.flamegraph()
        assert "generate" in text
        assert "search" in text
        assert "total self-time" in text


class TestSessionNesting:
    def test_inner_session_wins_and_restores(self):
        with obs.tracing() as outer:
            obs.inc("outer.only")
            with obs.tracing() as inner:
                obs.inc("inner.only")
            obs.inc("outer.only")
        assert outer.metrics.counters == {"outer.only": 2}
        assert inner.metrics.counters == {"inner.only": 1}
        assert not obs.enabled()


class TestTraceCommand:
    def test_trace_summarises_payload(self, tmp_path, capsys):
        from repro.cli import main

        session = _generate_traced(search_workers=1)
        path = tmp_path / "m.json"
        session.write_json(path)
        assert main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "repro.obs.v1" in out
        assert "generate" in out
        assert "search.configs_checked" in out

    def test_trace_rejects_invalid(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "wrong"}))
        assert main(["trace", str(path)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_metrics_out_flag(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "m.json"
        assert main(["gen", "ab-ak-kb", "--sizes", "32",
                     "--metrics-out", str(path),
                     "-o", str(tmp_path / "k.cu")]) == 0
        payload = json.loads(path.read_text())
        assert obs.validate_payload(payload) == []
        assert payload["meta"]["command"] == "gen"
