"""Tests for the index-merging extension (repro.core.merging)."""

import numpy as np
import pytest

from repro import Cogent
from repro.core.ir import ContractionError
from repro.core.merging import (
    can_merge,
    merge_candidates,
    merge_operands,
    merge_pair,
    normalize,
    unmerge_output,
)
from repro.core.parser import parse
from repro.gpu.executor import random_operands, reference_contract


@pytest.fixture
def gemm_like():
    # abcd-abef-efcd: (a,b), (e,f), (c,d) all fuse -> plain GEMM.
    return parse("abcd-abef-efcd",
                 {"a": 4, "b": 5, "c": 3, "d": 4, "e": 2, "f": 3})


class TestCanMerge:
    def test_adjacent_in_all_tensors(self, gemm_like):
        assert can_merge(gemm_like, "a", "b")
        assert can_merge(gemm_like, "e", "f")
        assert can_merge(gemm_like, "c", "d")

    def test_wrong_order_rejected(self, gemm_like):
        assert not can_merge(gemm_like, "b", "a")

    def test_not_adjacent_everywhere(self):
        # e,f adjacent in A but reversed in B.
        c = parse("abcd-abef-fecd", 4)
        assert not can_merge(c, "e", "f")

    def test_different_tensor_sets_rejected(self, gemm_like):
        # a (in A,C) and e (in A,B) never co-occur consistently.
        assert not can_merge(gemm_like, "b", "e")

    def test_self_merge_rejected(self, gemm_like):
        assert not can_merge(gemm_like, "a", "a")

    def test_eq1_has_no_mergeable_pairs(self, eq1_repr):
        assert merge_candidates(eq1_repr) == []


class TestMergePair:
    def test_merges_in_all_tensors(self, gemm_like):
        merged, spec = merge_pair(gemm_like, "a", "b")
        assert spec.merged_name == "ab"
        assert merged.c.indices == ("ab", "c", "d")
        assert merged.a.indices == ("ab", "e", "f")
        assert merged.extent("ab") == 20

    def test_unmergeable_raises(self, gemm_like):
        with pytest.raises(ContractionError):
            merge_pair(gemm_like, "a", "c")

    def test_flops_preserved(self, gemm_like):
        merged, _ = merge_pair(gemm_like, "a", "b")
        assert merged.flops == gemm_like.flops

    def test_strides_bit_compatible(self, gemm_like):
        merged, _ = merge_pair(gemm_like, "a", "b")
        # Stride of the merged index equals the stride of its low part;
        # following indices keep their original strides.
        assert merged.strides_of(merged.a)[0] == \
            gemm_like.strides_of(gemm_like.a)[0]
        assert merged.strides_of(merged.a)[1] == \
            gemm_like.strides_of(gemm_like.a)[2]


class TestNormalize:
    def test_gemm_like_becomes_matmul(self, gemm_like):
        merged, specs = normalize(gemm_like)
        assert len(merged.all_indices) == 3
        assert len(specs) == 3
        assert merged.c.ndim == 2

    def test_fixpoint_merges_chains(self):
        # a,b,c all adjacent in both tensors containing them.
        c = parse("abcd-abce-ed", {"a": 2, "b": 3, "c": 4, "d": 5, "e": 6})
        merged, specs = normalize(c)
        assert merged.c.ndim == 2  # (abc, d)
        assert len(specs) == 2

    def test_idempotent(self, eq1_repr):
        merged, specs = normalize(eq1_repr)
        assert specs == []
        assert merged is eq1_repr


class TestNumerics:
    def test_merge_operands_roundtrip(self, gemm_like):
        merged, specs = normalize(gemm_like)
        a, b = random_operands(gemm_like, seed=1)
        a2, b2 = merge_operands(gemm_like, specs, a, b)
        assert a2.shape == merged.extents_of(merged.a)
        got_merged = reference_contract(merged, a2, b2)
        got = unmerge_output(merged, specs, got_merged)
        want = reference_contract(gemm_like, a, b)
        assert np.allclose(got, want)

    def test_generator_with_merge_is_correct(self, gemm_like):
        gen = Cogent(arch="V100", allow_merge=True)
        kernel = gen.generate(gemm_like)
        assert kernel.merge_specs
        a, b = random_operands(gemm_like, seed=2)
        got = kernel.execute(a, b)
        want = reference_contract(gemm_like, a, b)
        assert np.allclose(got, want)

    def test_generator_merge_plus_split(self):
        c = parse("abc-abd-dc", {"a": 8, "b": 8, "c": 16, "d": 16})
        gen = Cogent(arch="V100", allow_merge=True, split_factors=(4,))
        kernel = gen.generate(c)
        assert kernel.merge_specs  # (a,b) fuse
        a, b = random_operands(c, seed=3)
        assert np.allclose(kernel.execute(a, b),
                           reference_contract(c, a, b))

    def test_merge_never_hurts_model_cost(self):
        sizes = {"a": 4, "b": 4, "c": 4, "d": 4, "e": 4, "f": 4}
        c = parse("abcd-abef-efcd", sizes)
        base = Cogent(arch="V100", allow_merge=False, allow_split=False)
        merged = Cogent(arch="V100", allow_merge=True, allow_split=False)
        t_base = base.generate(c).candidates[0].simulated.time_s
        t_merged = merged.generate(c).candidates[0].simulated.time_s
        # Tiny extents: fusing them is what enables coalescing at all.
        assert t_merged <= t_base
