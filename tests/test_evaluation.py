"""Tests for the experiment harness (repro.evaluation)."""

import math

import pytest

from repro.evaluation import (
    FrameworkResult,
    SuiteRunner,
    curve_table,
    format_table,
    geomean,
    speedup_summary,
    to_csv,
)
from repro.tccg import get


def _flatten(rows):
    return [
        (row.benchmark.name, framework,
         result.gflops, result.time_s, result.detail)
        for row in rows
        for framework, result in row.results.items()
    ]


@pytest.fixture(scope="module")
def runner():
    return SuiteRunner(arch="V100", tc_population=8, tc_generations=2)


@pytest.fixture(scope="module")
def rows(runner):
    benches = [get("ccsd_eq1"), get("sd_t_d2_1")]
    return runner.compare(benches, ("cogent", "nwchem", "talsh"))


class TestGeomean:
    def test_basic(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty_is_nan(self):
        assert math.isnan(geomean([]))


class TestRunner:
    def test_rows_have_all_frameworks(self, rows):
        for row in rows:
            assert set(row.results) == {"cogent", "nwchem", "talsh"}

    def test_gflops_positive(self, rows):
        for row in rows:
            for fw in row.results:
                assert row.gflops(fw) > 0

    def test_speedup(self, rows):
        row = rows[0]
        assert row.speedup("cogent", "talsh") == pytest.approx(
            row.gflops("cogent") / row.gflops("talsh")
        )

    def test_unknown_framework_raises(self, runner):
        with pytest.raises(KeyError):
            runner.run("magic", get(1).contraction())

    def test_tc_frameworks(self, runner):
        c = get("sd_t_d2_1").contraction()
        tuned = runner.run("tc", c, "sd2_1")
        untuned = runner.run("tc_untuned", c, "sd2_1")
        assert tuned.gflops > untuned.gflops

    def test_cogent_setup_time_recorded(self, rows):
        assert rows[0].results["cogent"].setup_time_s > 0

    def test_cogent_strategy_row(self, runner):
        c = get("sd_t_d2_1").contraction()
        plain = runner.run("cogent", c, "sd2_1")
        strategic = runner.run("cogent_strategy", c, "sd2_1")
        assert strategic.framework == "cogent_strategy"
        # Anchored on the searched direct kernel: can only match or
        # improve the plain COGENT row.
        assert strategic.gflops >= plain.gflops
        assert "strategy=" in strategic.detail or "modeled" in (
            strategic.detail
        )
        assert strategic.search_time_s >= plain.search_time_s

    def test_speedup_summary(self, rows):
        gm, mx = speedup_summary(rows, over="talsh")
        assert gm > 0
        assert mx >= gm


class TestCompareStats:
    def test_stats_recorded(self, runner, rows):
        stats = runner.last_stats
        assert stats is not None
        assert stats.cells == len(_flatten(rows))
        assert stats.evaluated == stats.cells
        assert not stats.cache_enabled
        assert stats.total_s > 0
        assert stats.setup_s > 0

    def test_summary_mentions_cells(self, runner):
        assert "cells" in runner.last_stats.summary()

    def test_result_dict_roundtrip(self, rows):
        result = rows[0].results["cogent"]
        assert result.search_time_s >= 0
        assert FrameworkResult.from_dict(result.as_dict()) == result

    def test_from_dict_ignores_unknown_keys(self):
        payload = {"framework": "cogent", "benchmark": "x",
                   "gflops": 1.0, "time_s": 2.0, "future_field": 3}
        result = FrameworkResult.from_dict(payload)
        assert result.gflops == 1.0


class TestCompareParallelAndCache:
    BENCHES = ("mo_stage1", "mo_stage2")
    FRAMEWORKS = ("cogent", "talsh")

    def test_parallel_matches_serial(self):
        benches = [get(n) for n in self.BENCHES]
        serial_rows = SuiteRunner(arch="V100").compare(
            benches, self.FRAMEWORKS
        )
        parallel = SuiteRunner(arch="V100")
        parallel_rows = parallel.compare(
            benches, self.FRAMEWORKS, _workers=2
        )
        assert _flatten(parallel_rows) == _flatten(serial_rows)

    def test_warm_cache_zero_reevaluations(self, tmp_path):
        benches = [get(n) for n in self.BENCHES]
        cold = SuiteRunner(arch="V100", _cache_dir=tmp_path / "eval")
        cold_rows = cold.compare(benches, self.FRAMEWORKS)
        assert cold.last_stats.cache_misses == cold.last_stats.cells
        assert cold.last_stats.evaluated == cold.last_stats.cells

        warm = SuiteRunner(arch="V100", _cache_dir=tmp_path / "eval")
        warm_rows = warm.compare(benches, self.FRAMEWORKS)
        assert warm.last_stats.evaluated == 0
        assert warm.last_stats.cache_hits == warm.last_stats.cells
        assert _flatten(warm_rows) == _flatten(cold_rows)
        for row in warm_rows:
            for result in row.results.values():
                assert result.cached
        for row in cold_rows:
            for result in row.results.values():
                assert not result.cached

    def test_cache_keyed_on_tuner_params(self, tmp_path):
        bench = get("sd_t_d2_1")
        first = SuiteRunner(
            arch="V100", tc_population=6, tc_generations=2,
            _cache_dir=tmp_path / "eval",
        )
        first.compare([bench], ("tc_untuned",))
        second = SuiteRunner(
            arch="V100", tc_population=8, tc_generations=2,
            _cache_dir=tmp_path / "eval",
        )
        second.compare([bench], ("tc_untuned",))
        # Different tuner parameters must not hit each other's entries.
        assert second.last_stats.cache_hits == 0


class TestTables:
    def test_format_table_contains_benchmarks(self, rows):
        text = format_table(rows, ("cogent", "nwchem", "talsh"),
                            title="demo")
        assert "demo" in text
        assert "ccsd_eq1" in text
        assert "geomean" in text
        assert "cogent vs talsh" in text

    def test_csv(self, rows):
        csv = to_csv(rows, ("cogent", "talsh"))
        lines = csv.strip().splitlines()
        assert lines[0] == "id,name,expr,cogent,talsh"
        assert len(lines) == 1 + len(rows)

    def test_curve_table(self):
        text = curve_table([1.0, 2.0, 3.0, 4.0, 5.0], stride=2)
        assert "best GFLOPS" in text
        assert text.strip().splitlines()[-1].split()[0] == "5"
