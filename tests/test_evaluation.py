"""Tests for the experiment harness (repro.evaluation)."""

import math

import pytest

from repro.evaluation import (
    SuiteRunner,
    curve_table,
    format_table,
    geomean,
    speedup_summary,
    to_csv,
)
from repro.tccg import get


@pytest.fixture(scope="module")
def runner():
    return SuiteRunner(arch="V100", tc_population=8, tc_generations=2)


@pytest.fixture(scope="module")
def rows(runner):
    benches = [get("ccsd_eq1"), get("sd_t_d2_1")]
    return runner.compare(benches, ("cogent", "nwchem", "talsh"))


class TestGeomean:
    def test_basic(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty_is_nan(self):
        assert math.isnan(geomean([]))


class TestRunner:
    def test_rows_have_all_frameworks(self, rows):
        for row in rows:
            assert set(row.results) == {"cogent", "nwchem", "talsh"}

    def test_gflops_positive(self, rows):
        for row in rows:
            for fw in row.results:
                assert row.gflops(fw) > 0

    def test_speedup(self, rows):
        row = rows[0]
        assert row.speedup("cogent", "talsh") == pytest.approx(
            row.gflops("cogent") / row.gflops("talsh")
        )

    def test_unknown_framework_raises(self, runner):
        with pytest.raises(KeyError):
            runner.run("magic", get(1).contraction())

    def test_tc_frameworks(self, runner):
        c = get("sd_t_d2_1").contraction()
        tuned = runner.run("tc", c, "sd2_1")
        untuned = runner.run("tc_untuned", c, "sd2_1")
        assert tuned.gflops > untuned.gflops

    def test_cogent_setup_time_recorded(self, rows):
        assert rows[0].results["cogent"].setup_time_s > 0

    def test_speedup_summary(self, rows):
        gm, mx = speedup_summary(rows, over="talsh")
        assert gm > 0
        assert mx >= gm


class TestTables:
    def test_format_table_contains_benchmarks(self, rows):
        text = format_table(rows, ("cogent", "nwchem", "talsh"),
                            title="demo")
        assert "demo" in text
        assert "ccsd_eq1" in text
        assert "geomean" in text
        assert "cogent vs talsh" in text

    def test_csv(self, rows):
        csv = to_csv(rows, ("cogent", "talsh"))
        lines = csv.strip().splitlines()
        assert lines[0] == "id,name,expr,cogent,talsh"
        assert len(lines) == 1 + len(rows)

    def test_curve_table(self):
        text = curve_table([1.0, 2.0, 3.0, 4.0, 5.0], stride=2)
        assert "best GFLOPS" in text
        assert text.strip().splitlines()[-1].split()[0] == "5"
