"""Tests for the staged whole-network compilation pipeline
(repro.core.pipeline): DAG construction, level scheduling, liveness
memory planning, the dedup/codegen stages, level-parallel execution,
and the api/CLI wiring."""

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Cogent, api
from repro.core.ir import ContractionError
from repro.core.network import (
    NetworkContractor,
    optimal_path,
    parse_network,
)
from repro.core.parser import parse_compact
from repro.core.pipeline import (
    CompiledNetwork,
    ContractionDAG,
    NetworkPipeline,
    compute_schedule,
    plan_memory,
)


@pytest.fixture(scope="module")
def gen():
    return Cogent(arch="V100", top_k=2)


@pytest.fixture(scope="module")
def chain_net(gen):
    pipeline = NetworkPipeline(gen)
    return pipeline.compile(
        "ab,bc,cd,de->ae",
        {"a": 16, "b": 512, "c": 8, "d": 256, "e": 16},
    )


CHAIN6 = "ab,bc,cd,de,ef,fg->ag"
CHAIN6_SIZES = {"a": 128, "b": 16, "c": 32, "d": 64, "e": 128,
                "f": 256, "g": 2}


class TestContractionDAG:
    def test_from_path_nodes_and_steps(self):
        spec = parse_network("ab,bc,cd->ad", 8)
        dag = ContractionDAG.from_path(optimal_path(spec))
        assert len(dag.inputs) == 3
        assert len(dag.steps) == 2
        assert len(dag.outputs) == 1
        assert dag.outputs[0].id == dag.steps[-1].result

    def test_from_path_elements(self):
        spec = parse_network(
            "ab,bc->ac", {"a": 3, "b": 5, "c": 7}
        )
        dag = ContractionDAG.from_path(optimal_path(spec))
        by_id = {n.id: n for n in dag.nodes}
        assert by_id[0].elements == 15
        assert by_id[1].elements == 35
        assert by_id[2].elements == 21

    def test_from_workload_all_level_one(self):
        contractions = [
            parse_compact("ab-ac-cb", 8),
            parse_compact("ab-ac-cb", 8),
        ]
        dag = ContractionDAG.from_workload(contractions)
        schedule = compute_schedule(dag)
        assert schedule.depth == 1
        assert len(schedule.levels[0]) == 2
        # Every result is an output; nothing is an intermediate.
        assert dag.intermediates == ()

    def test_from_workload_name_mismatch_rejected(self):
        with pytest.raises(ValueError, match="one-to-one"):
            ContractionDAG.from_workload(
                [parse_compact("ab-ac-cb", 8)], kernel_names=["x", "y"]
            )


class TestSchedule:
    def test_balanced_chain_two_levels(self):
        # (0,1) and (2,3) are independent; the final join waits.
        spec = parse_network(
            "ab,bc,cd,de->ae",
            {"a": 16, "b": 512, "c": 8, "d": 256, "e": 16},
        )
        schedule = compute_schedule(
            ContractionDAG.from_path(optimal_path(spec))
        )
        assert schedule.depth == 2
        assert len(schedule.levels[0]) == 2
        assert len(schedule.levels[1]) == 1
        assert schedule.width == 2

    def test_sequential_chain_depth_equals_steps(self):
        spec = parse_network(CHAIN6, CHAIN6_SIZES)
        path = optimal_path(spec)
        schedule = compute_schedule(ContractionDAG.from_path(path))
        assert schedule.depth == len(path.steps)
        assert schedule.width == 1

    def test_output_never_freed(self):
        spec = parse_network("ab,bc,cd->ad", 8)
        dag = ContractionDAG.from_path(optimal_path(spec))
        schedule = compute_schedule(dag)
        out = dag.outputs[0].id
        assert schedule.last_use[out] > schedule.depth


class TestMemoryPlan:
    def _plan(self, expr, sizes, dtype_bytes=8):
        spec = parse_network(expr, sizes)
        dag = ContractionDAG.from_path(optimal_path(spec))
        schedule = compute_schedule(dag)
        return dag, schedule, plan_memory(
            dag, schedule, dtype_bytes=dtype_bytes
        )

    def test_sequential_chain_reuses_buffers(self):
        dag, schedule, plan = self._plan(CHAIN6, CHAIN6_SIZES)
        assert plan.planned_peak_bytes < plan.naive_peak_bytes
        assert len(plan.buffer_bytes) < len(dag.intermediates)
        assert plan.reduction > 1.0

    def test_planned_never_exceeds_naive(self):
        for expr, sizes in [
            ("ab,bc,cd->ad", 8),
            (CHAIN6, CHAIN6_SIZES),
            ("abc,ai,bj,ck->ijk",
             {"a": 6, "b": 7, "c": 8, "i": 3, "j": 4, "k": 5}),
        ]:
            _, _, plan = self._plan(expr, sizes)
            assert plan.planned_peak_bytes <= plan.naive_peak_bytes

    def test_outputs_excluded(self):
        # A 2-step network has one intermediate; the output is not in
        # the arena.
        dag, _, plan = self._plan(
            "ab,bc,cd->ad", {"a": 4, "b": 8, "c": 8, "d": 4}
        )
        assert len(plan.buffer_bytes) == 1
        assert plan.planned_peak_bytes == 4 * 8 * 8  # a*c elements * 8B

    def test_dtype_bytes_scales_plan(self):
        _, _, plan8 = self._plan("ab,bc,cd->ad", 8, dtype_bytes=8)
        _, _, plan4 = self._plan("ab,bc,cd->ad", 8, dtype_bytes=4)
        assert plan8.planned_peak_bytes == 2 * plan4.planned_peak_bytes

    def test_live_operands_not_recycled(self):
        # Every intermediate's buffer must not be shared with another
        # intermediate whose lifetime overlaps.
        dag, schedule, plan = self._plan(CHAIN6, CHAIN6_SIZES)
        produced_level = schedule.node_level
        for node_a in dag.intermediates:
            for node_b in dag.intermediates:
                if node_a.id >= node_b.id:
                    continue
                if (plan.assignments[node_a.id]
                        != plan.assignments[node_b.id]):
                    continue
                # Same buffer: lifetimes [produced, last_use] must be
                # disjoint.
                a0, a1 = (produced_level[node_a.id],
                          schedule.last_use[node_a.id])
                b0, b1 = (produced_level[node_b.id],
                          schedule.last_use[node_b.id])
                assert a1 < b0 or b1 < a0


class TestPipelineStages:
    def test_all_stages_ran(self, chain_net):
        assert list(chain_net.stage_wall) == [
            "parse", "path", "schedule", "memory", "dedup", "codegen",
        ]
        assert all(w >= 0 for w in chain_net.stage_wall.values())

    def test_planned_peak_recorded_on_path(self, chain_net):
        assert (
            chain_net.path.planned_peak_bytes
            == chain_net.memory_plan.planned_peak_bytes
        )

    def test_execute_matches_reference(self, chain_net):
        rng = np.random.default_rng(0)
        sizes = chain_net.spec.sizes
        ops = [
            rng.random(tuple(sizes[i] for i in t))
            for t in chain_net.spec.inputs
        ]
        assert np.allclose(
            chain_net.execute(*ops), chain_net.reference(*ops)
        )

    def test_as_dict_payload(self, chain_net):
        payload = chain_net.as_dict()
        assert payload["steps"] == 3
        assert payload["levels"] == 2
        assert payload["planned_peak_bytes"] >= 0
        assert payload["program"]["contractions"] == 3
        json.dumps(payload)  # JSON-serialisable

    def test_spec_input_accepted(self, gen):
        spec = parse_network("ab,bc->ac", 8)
        net = NetworkPipeline(gen).compile(spec)
        assert net.spec is spec

    def test_memory_cap_flows_through(self, gen):
        pipeline = NetworkPipeline(gen, memory_cap=99)
        net = pipeline.compile(
            "ab,bc,cd->ad", {"a": 2, "b": 33, "c": 50, "d": 3}
        )
        assert net.path.peak_intermediate == 99
        with pytest.raises(ContractionError, match="memory cap"):
            NetworkPipeline(gen, memory_cap=42).compile(
                "ab,bc,cd->ad", {"a": 2, "b": 33, "c": 50, "d": 3}
            )


class TestLevelParallel:
    def test_parallel_execution_bit_identical(self, gen):
        sizes = {"a": 16, "b": 512, "c": 8, "d": 256, "e": 16}
        serial = NetworkPipeline(gen, workers=1).compile(
            "ab,bc,cd,de->ae", sizes
        )
        parallel = NetworkPipeline(gen, workers=4).compile(
            "ab,bc,cd,de->ae", sizes
        )
        rng = np.random.default_rng(1)
        ops = [
            rng.random(tuple(sizes[i] for i in t))
            for t in serial.spec.inputs
        ]
        got_serial = serial.execute(*ops)
        got_parallel = parallel.execute(*ops)
        assert got_serial.tobytes() == got_parallel.tobytes()

    def test_contractor_workers_attribute(self, gen):
        net = NetworkPipeline(gen, workers=3).compile("ab,bc->ac", 8)
        assert net.contractor.workers == 3


class TestWorkloadMode:
    def test_kernels_bit_identical_to_per_contraction(self, gen):
        from repro.gpu.executor import integer_operands

        contractions = [
            parse_compact("abij-acik-cbkj", {c: 6 for c in "abcijk"}),
            parse_compact("abij-acik-cbkj", {c: 6 for c in "abcijk"}),
        ]
        net = NetworkPipeline(gen).compile_workload(contractions)
        assert net.stats.classes == 1
        assert net.stats.dedup_hits == 1
        solo = gen.generate(contractions[0])
        a, b = integer_operands(contractions[0])
        want = solo.execute(a, b)
        for kernel in net.kernels:
            assert kernel.execute(a, b).tobytes() == want.tobytes()

    def test_execute_raises_for_workload(self, gen):
        net = NetworkPipeline(gen).compile_workload(
            [parse_compact("ab-ac-cb", 8)]
        )
        with pytest.raises(ContractionError, match="workload"):
            net.execute(np.zeros((8, 8)), np.zeros((8, 8)))

    def test_ccsd_precompile_routes_through_pipeline(self, tmp_path):
        from repro.apps.ccsd import CcsdDriver

        driver = CcsdDriver(
            n_occupied=4, n_virtual=6,
            generator=Cogent(top_k=1), store_dir=tmp_path / "store",
        )
        stats = driver.precompile()
        assert stats.contractions == 3
        assert stats.searches == stats.classes
        # Warm: a fresh driver against the same store searches zero.
        warm = CcsdDriver(
            n_occupied=4, n_virtual=6,
            generator=Cogent(top_k=1), store_dir=tmp_path / "store",
        )
        warm_stats = warm.precompile()
        assert warm_stats.searches == 0

    def test_ccsdt_precompile_routes_through_pipeline(self):
        from repro.apps.ccsdt import TriplesDriver

        driver = TriplesDriver(
            n_occupied=2, n_virtual=3, generator=Cogent(top_k=1)
        )
        stats = driver.precompile()
        assert stats is not None
        assert stats.classes <= stats.contractions
        assert driver.precompile() is None  # nothing pending


class TestApiAndCli:
    def test_compile_network(self):
        options = api.Options(top_k=1)
        net = api.compile_network("ab,bc,cd->ad", 8, options=options)
        assert isinstance(net, CompiledNetwork)
        assert len(net.kernels) == 2

    def test_options_validation(self):
        with pytest.raises(ValueError, match="path_engine"):
            api.Options(path_engine="columnar")
        with pytest.raises(ValueError, match="memory_cap"):
            api.Options(memory_cap=0)
        assert api.Options(path_engine="object").path_engine == "object"

    def test_cli_network_smoke(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "net.json"
        status = main([
            "network", "ab,bc,cd->ad", "--sizes", "8",
            "--top-k", "1", "--json", str(out),
        ])
        assert status == 0
        payload = json.loads(out.read_text())
        assert payload["steps"] == 2
        assert payload["levels"] == 2
        text = capsys.readouterr().out
        assert "arena" in text

    def test_cli_network_memory_cap(self, tmp_path):
        from repro.cli import main

        with pytest.raises(ContractionError, match="memory cap"):
            main([
                "network", "ab,bc,cd->ad",
                "--sizes", "a=2,b=33,c=50,d=3",
                "--top-k", "1", "--memory-cap", "42",
            ])


class TestProperties:
    @given(
        n=st.integers(min_value=2, max_value=6),
        extents=st.lists(
            st.integers(min_value=1, max_value=6),
            min_size=7, max_size=7,
        ),
    )
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_memory_plan_bounded_and_engines_agree(self, n, extents):
        letters = [chr(ord("a") + i) for i in range(n + 1)]
        expr = ",".join(
            letters[i] + letters[i + 1] for i in range(n)
        ) + f"->{letters[0]}{letters[n]}"
        sizes = {l: e for l, e in zip(letters, extents)}
        spec = parse_network(expr, sizes)
        try:
            obj = optimal_path(spec, engine="object")
        except ContractionError:
            with pytest.raises(ContractionError):
                optimal_path(spec, engine="vectorized")
            return
        vec = optimal_path(spec, engine="vectorized")
        assert vec.total_flops == obj.total_flops
        assert vec.peak_intermediate == obj.peak_intermediate
        assert [
            (s.left, s.right, s.result) for s in vec.steps
        ] == [(s.left, s.right, s.result) for s in obj.steps]
        dag = ContractionDAG.from_path(vec)
        schedule = compute_schedule(dag)
        plan = plan_memory(dag, schedule)
        assert plan.planned_peak_bytes <= plan.naive_peak_bytes

    def test_execution_bit_identical_to_integer_einsum(self, gen):
        # Integer-valued operands make every summation order exact, so
        # the network execution through generated kernels must be
        # bit-identical to einsum over the whole network.
        sizes = {"a": 3, "b": 4, "c": 5, "d": 4, "e": 3}
        spec = parse_network("ab,bc,cd,de->ae", sizes)
        nc = NetworkContractor(spec, gen)
        rng = np.random.default_rng(9)
        ops = [
            rng.integers(-4, 5, tuple(
                sizes[i] for i in t
            )).astype(np.float64)
            for t in spec.inputs
        ]
        got = nc.execute(*ops)
        want = np.einsum("ab,bc,cd,de->ae", *ops)
        assert got.tobytes() == want.tobytes()
