"""Tests for the CCD-style iterative solver (repro.apps.ccsd)."""

import numpy as np
import pytest

from repro import Cogent
from repro.apps.ccsd import DIAGRAMS, CcsdDriver


@pytest.fixture(scope="module")
def driver():
    return CcsdDriver(
        n_occupied=4, n_virtual=5,
        generator=Cogent(arch="V100", top_k=2), seed=3,
    )


class TestDiagrams:
    def test_three_diagrams(self):
        assert len(DIAGRAMS) == 3

    def test_diagram_contractions_valid(self, driver):
        for _name, expr in DIAGRAMS:
            c = driver._contraction(expr)
            assert c.c.indices == ("a", "b", "i", "j")
            assert len(c.internal_indices) == 2

    def test_operand_shapes_match(self, driver):
        t2 = np.zeros((driver.nv, driver.nv, driver.no, driver.no))
        for name, expr in DIAGRAMS:
            c = driver._contraction(expr)
            a, b = driver._diagram_operands(name, t2)
            assert a.shape == c.extents_of(c.a)
            assert b.shape == c.extents_of(c.b)


class TestSolve:
    def test_converges(self, driver):
        result = driver.solve()
        assert result.converged
        assert result.iterations < 40

    def test_residual_norms_decrease(self, driver):
        norms = driver.solve().residual_norms
        assert norms[-1] < norms[0]
        # Contractive map: eventually monotone decreasing.
        tail = norms[2:]
        assert all(b <= a for a, b in zip(tail, tail[1:]))

    def test_kernels_match_einsum_path(self, driver):
        via_kernels = driver.solve(use_kernels=True)
        via_einsum = driver.solve(use_kernels=False)
        assert via_kernels.energy == pytest.approx(
            via_einsum.energy, abs=1e-12
        )
        assert via_kernels.iterations == via_einsum.iterations

    def test_cache_reuse_across_sweeps(self, driver):
        driver.cache.hits = driver.cache.misses = 0
        result = driver.solve()
        # 3 kernels, one miss each on first sweep (if not already
        # cached), then pure hits.
        assert len(driver.cache) == 3
        assert driver.cache.hits >= 3 * (result.iterations - 1)

    def test_deterministic(self):
        gen = Cogent(arch="V100", top_k=1)
        e1 = CcsdDriver(3, 4, generator=gen, seed=5).solve().energy
        e2 = CcsdDriver(3, 4, generator=gen, seed=5).solve().energy
        assert e1 == e2

    def test_zero_coupling_gives_mp2_like_energy(self):
        # With coupling -> 0 the update has one step: T = V / D.
        gen = Cogent(arch="V100", top_k=1)
        driver = CcsdDriver(3, 4, generator=gen, seed=1,
                            coupling=1e-9)
        result = driver.solve()
        want = float(np.sum(
            (driver.v_oovv / driver.denominator) * driver.v_oovv
        ))
        assert result.energy == pytest.approx(want, rel=1e-3)

    def test_report(self, driver):
        text = driver.report()
        assert "converged" in text
        assert "cache hits" in text
