"""Tests for the TTGT substrate (repro.ttgt)."""

import numpy as np
import pytest

from repro.core.parser import parse
from repro.gpu.executor import random_operands, reference_contract
from repro.ttgt.gemm import GemmParams, gemm_efficiency, gemm_time
from repro.ttgt.pipeline import TtgtPipeline
from repro.ttgt.transpose import (
    TransposeParams,
    TransposePlan,
    execute_transpose,
    permutation_between,
    transpose_time,
)


class TestTransposePlan:
    def test_identity_detected(self):
        plan = TransposePlan((4, 5), (0, 1))
        assert plan.is_identity

    def test_non_permutation_rejected(self):
        with pytest.raises(ValueError):
            TransposePlan((4, 5), (0, 0))

    def test_output_shape(self):
        plan = TransposePlan((4, 5, 6), (2, 0, 1))
        assert plan.output_shape() == (6, 4, 5)

    def test_elements(self):
        assert TransposePlan((4, 5), (1, 0)).elements == 20


class TestTransposeCost:
    def test_identity_is_free(self, v100):
        assert transpose_time(TransposePlan((64, 64), (0, 1)), v100) == 0.0

    def test_fvi_preserving_cheaper_than_general(self, v100):
        shape = (64, 64, 64)
        keep = transpose_time(TransposePlan(shape, (0, 2, 1)), v100)
        general = transpose_time(TransposePlan(shape, (1, 0, 2)), v100)
        assert keep < general

    def test_short_modes_cost_more_per_byte(self, v100):
        fat = TransposePlan((256, 256), (1, 0))
        thin = TransposePlan((8, 8 * 256 * 32), (1, 0))
        t_fat = transpose_time(fat, v100) / fat.elements
        t_thin = transpose_time(thin, v100) / thin.elements
        assert t_thin > t_fat

    def test_scales_with_elements(self, v100):
        small = transpose_time(TransposePlan((64, 64), (1, 0)), v100)
        big = transpose_time(TransposePlan((512, 512), (1, 0)), v100)
        assert big > small


class TestTransposeExecution:
    def test_matches_numpy(self):
        arr = np.arange(24.0).reshape(2, 3, 4)
        plan = TransposePlan((2, 3, 4), (2, 0, 1))
        assert np.array_equal(
            execute_transpose(plan, arr), np.transpose(arr, (2, 0, 1))
        )

    def test_shape_mismatch_rejected(self):
        plan = TransposePlan((2, 3), (1, 0))
        with pytest.raises(ValueError):
            execute_transpose(plan, np.zeros((3, 2)))

    def test_permutation_between(self):
        assert permutation_between(("a", "b", "c"), ("c", "a", "b")) == \
            (2, 0, 1)

    def test_permutation_between_mismatch(self):
        with pytest.raises(ValueError):
            permutation_between(("a", "b"), ("a", "c"))


class TestGemmModel:
    def test_square_near_peak(self, v100):
        eff = gemm_efficiency(4096, 4096, 4096, v100.num_sms)
        assert eff > 0.8

    def test_skinny_n_degrades(self, v100):
        square = gemm_efficiency(4096, 4096, 4096, v100.num_sms)
        skinny = gemm_efficiency(4096, 16, 4096, v100.num_sms)
        assert skinny < square / 2

    def test_small_k_degrades(self, v100):
        big_k = gemm_efficiency(4096, 4096, 4096, v100.num_sms)
        small_k = gemm_efficiency(4096, 4096, 16, v100.num_sms)
        assert small_k < big_k

    def test_time_positive_and_monotone_in_flops(self, v100):
        t1 = gemm_time(512, 512, 512, v100)
        t2 = gemm_time(2048, 2048, 2048, v100)
        assert 0 < t1 < t2

    def test_memory_floor_for_tiny_k(self, v100):
        # K=1 GEMM moves ~3 matrices; cannot be faster than streaming.
        t = gemm_time(8192, 8192, 1, v100)
        bytes_moved = 8 * (8192 * 1 + 8192 * 1 + 2 * 8192 * 8192)
        floor = bytes_moved / (v100.dram_bandwidth_gbs * 1e9)
        assert t > floor * 0.8


class TestPipeline:
    @pytest.mark.parametrize("expr,sizes", [
        ("ab-ak-kb", {"a": 6, "b": 7, "k": 5}),
        ("abcd-aebf-dfce", {"a": 4, "b": 3, "c": 5, "d": 4,
                            "e": 2, "f": 3}),
        ("abc-adc-bd", {"a": 5, "b": 6, "c": 3, "d": 4}),
        ("abcdef-gdab-efgc", 3),
    ])
    def test_execution_matches_einsum(self, v100, expr, sizes):
        c = parse(expr, sizes)
        pipe = TtgtPipeline(v100)
        a, b = random_operands(c)
        got = pipe.execute(c, a, b)
        assert np.allclose(got, reference_contract(c, a, b))

    def test_plan_times_positive(self, v100, eq1_repr):
        plan = TtgtPipeline(v100).plan(eq1_repr)
        assert plan.total_time > 0
        assert plan.gflops > 0
        assert plan.time_gemm > 0

    def test_mnk_match_index_groups(self, v100, eq1_repr):
        plan = TtgtPipeline(v100).plan(eq1_repr)
        assert plan.m == 24 * 24
        assert plan.n == 24 * 24
        assert plan.k == 24 * 24

    def test_workspace_counts_non_identity_transposes(self, v100,
                                                      eq1_repr):
        plan = TtgtPipeline(v100).plan(eq1_repr)
        assert plan.workspace_elements > 0

    def test_optimized_orders_never_slower(self, v100):
        c = parse("abcdef-gdab-efgc", 24)
        fixed = TtgtPipeline(v100, optimize_orders=False).plan(c)
        opt = TtgtPipeline(v100, optimize_orders=True).plan(c)
        assert opt.total_time <= fixed.total_time

    def test_transpose_dominates_ccsdt(self, v100):
        """The paper's motivating observation: for CCSD(T)-style
        contractions the transposition time dwarfs the GEMM."""
        c = parse("abcdef-gdab-efgc", 24)
        plan = TtgtPipeline(v100).plan(c)
        assert plan.transpose_time > plan.time_gemm

    def test_gemm_dominates_4d(self, v100):
        """...while 4D = 4D * 4D contractions are GEMM-dominated, which
        is why TAL_SH is competitive there (Section V)."""
        c = parse("abcd-aebf-dfce", 64)
        plan = TtgtPipeline(v100).plan(c)
        assert plan.time_gemm > plan.transpose_time

    def test_summary_string(self, v100, eq1_repr):
        text = TtgtPipeline(v100).plan(eq1_repr).summary()
        assert "GFLOPS" in text and "M=" in text


class TestSharedPackingCost:
    """The transpose model routes through the shared packing helpers in
    repro.core.costmodel; these pin the pre-refactor closed-form values
    so the routing is a pure re-plumbing."""

    def test_fvi_preserving_time_unchanged(self, v100):
        plan = TransposePlan((64, 32, 16), (0, 2, 1))
        params = TransposeParams()
        bandwidth = (
            v100.dram_bandwidth_gbs * 1e9
            * params.fvi_preserving_efficiency
        )
        expected = (2 * plan.elements * 8) / bandwidth \
            + params.launch_overhead_s
        assert transpose_time(plan, v100) == pytest.approx(expected)

    def test_tiled_time_unchanged(self, v100):
        plan = TransposePlan((64, 32, 16), (1, 0, 2))
        params = TransposeParams()
        sat = params.saturation_elements
        read_f = min(1.0, 64 / sat)
        write_f = min(1.0, 32 / sat)
        eff = params.tiled_efficiency * min(
            1.0, (read_f + write_f) / 2 + 0.25
        ) * min(read_f, write_f) ** 0.5
        expected = (2 * plan.elements * 8) \
            / (v100.dram_bandwidth_gbs * 1e9 * eff) \
            + params.launch_overhead_s
        assert transpose_time(plan, v100) == pytest.approx(expected)

    def test_read_run_identity_equals_elements(self):
        plan = TransposePlan((4, 5, 6), (0, 1, 2))
        assert plan.read_run == plan.elements

    def test_read_run_prefix_product(self):
        # First two dims preserved: run = 4 * 5.
        assert TransposePlan((4, 5, 6, 7), (0, 1, 3, 2)).read_run == 20
        # FVI moves: run = 1.
        assert TransposePlan((4, 5), (1, 0)).read_run == 1

    def test_pipeline_packing_transactions_positive_when_transposing(
        self, v100
    ):
        c = parse("abcdef-gdab-efgc", 8)
        plan = TtgtPipeline(v100).plan(c)
        assert plan.workspace_elements > 0
        assert plan.packing_transactions() > 0

    def test_pipeline_packing_transactions_zero_for_matmul(self, v100):
        # ij-ik-kj matricises as-is: no transposes, no packing traffic.
        c = parse("ij-ik-kj", 64)
        plan = TtgtPipeline(v100).plan(c)
        assert plan.packing_transactions() == 0
