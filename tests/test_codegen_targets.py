"""Tests for the pluggable codegen target registry.

Covers the registry contract, golden-file snapshots of every registered
target, differential execution of every runnable target against
``numpy.einsum`` (and pairwise), the deprecation shims over the legacy
per-backend API, per-target caching/store-key behaviour, and the
``codegen.target.*`` observability counters.
"""

import itertools

import numpy as np
import pytest

from repro import Cogent, obs
from repro.core.codegen import (
    CodegenTarget,
    TargetCapabilityError,
    get_target,
    list_targets,
    register_target,
    runnable_targets,
)
from repro.core.codegen import registry as registry_mod
from repro.core.mapping import config_from_spec
from repro.core.parser import parse
from repro.core.plan import KernelPlan
from repro.gpu.executor import integer_operands, reference_contract

from .conftest import requires_cc
from .golden_cases import GOLDEN_CASES, golden_plan

BUILTIN_TARGETS = ("cemu", "clemu", "cuda", "opencl", "openmp")


@pytest.fixture
def plan(eq1_small):
    cfg = config_from_spec(
        eq1_small,
        tb_x=[("a", 4)], tb_y=[("d", 2)],
        reg_x=[("b", 2)], reg_y=[("c", 3)],
        tb_k=[("e", 2), ("f", 2)],
    )
    return KernelPlan(eq1_small, cfg)


class TestRegistryContract:
    def test_builtins_registered(self):
        names = list_targets()
        assert len(names) >= 5
        for name in BUILTIN_TARGETS:
            assert name in names

    def test_list_targets_sorted(self):
        names = list_targets()
        assert names == sorted(names)

    def test_runnable_subset(self):
        runnable = runnable_targets()
        assert set(runnable) <= set(list_targets())
        for name in ("cemu", "clemu", "openmp"):
            assert name in runnable
        assert "cuda" not in runnable
        assert "opencl" not in runnable

    def test_unknown_target_error_lists_registered(self):
        with pytest.raises(ValueError) as exc:
            get_target("fortran")
        msg = str(exc.value)
        assert "fortran" in msg
        for name in BUILTIN_TARGETS:
            assert name in msg

    def test_get_target_returns_singleton(self):
        assert get_target("cuda") is get_target("cuda")

    def test_target_names_match_keys(self):
        for name in list_targets():
            assert get_target(name).name == name

    def test_register_custom_target(self):
        @register_target
        class EchoTarget(CodegenTarget):
            name = "echo-test"
            source_suffix = ".txt"

            def emit_kernel(self, plan, kernel_name="tc_kernel"):
                return f"echo {kernel_name}"

        try:
            assert "echo-test" in list_targets()
            assert get_target("echo-test").emit_kernel(None) == \
                "echo tc_kernel"
        finally:
            del registry_mod._REGISTRY["echo-test"]
        assert "echo-test" not in list_targets()

    def test_register_rejects_missing_name(self):
        with pytest.raises(ValueError):
            @register_target
            class Nameless(CodegenTarget):
                def emit_kernel(self, plan, kernel_name="tc_kernel"):
                    return ""

    def test_non_executable_target_cannot_run(self, plan):
        with pytest.raises(TargetCapabilityError) as exc:
            get_target("cuda").compile_and_run(plan, None, None)
        msg = str(exc.value)
        assert "cuda" in msg
        for name in runnable_targets():
            assert name in msg

    def test_emulation_targets_have_no_driver(self, plan):
        for name in ("cemu", "clemu", "openmp"):
            with pytest.raises(TargetCapabilityError):
                get_target(name).emit_driver(plan)

    def test_cuda_has_driver_and_launch(self, plan):
        target = get_target("cuda")
        assert "int main(" in target.emit_driver(plan)
        assert "<<<" in target.launch_snippet(plan)

    def test_opencl_driver_is_harness(self, plan):
        assert "pthread_barrier_wait" in get_target("opencl").emit_driver(plan)


class TestGoldens:
    @pytest.mark.parametrize(
        "case,target_name",
        list(itertools.product(GOLDEN_CASES, BUILTIN_TARGETS)),
    )
    def test_emitted_source_matches_golden(
        self, case, target_name, goldens_dir
    ):
        target = get_target(target_name)
        path = goldens_dir / f"{case}__{target_name}{target.source_suffix}"
        assert path.is_file(), (
            f"missing golden {path.name}; regenerate with "
            "PYTHONPATH=src python tools/update_goldens.py"
        )
        got = target.emit_kernel(golden_plan(case))
        assert got == path.read_text(), (
            f"{target_name} emission drifted from {path.name}; if the "
            "change is intentional rerun tools/update_goldens.py"
        )

    @pytest.fixture(scope="class")
    def goldens_dir(self):
        from pathlib import Path

        return Path(__file__).resolve().parent / "goldens"


@requires_cc
class TestDifferentialExecution:
    """Every runnable target must reproduce numpy.einsum bit-for-bit on
    integer-valued operands (any summation order is exact)."""

    SLICE = (
        ("abcd-aebf-dfce",
         {"a": 7, "b": 5, "c": 6, "d": 4, "e": 3, "f": 5},
         dict(tb_x=[("a", 4)], tb_y=[("d", 2)],
              reg_x=[("b", 2)], reg_y=[("c", 3)],
              tb_k=[("e", 2), ("f", 2)])),
        ("ab-ak-kb",
         {"a": 9, "b": 7, "k": 5},
         dict(tb_x=[("a", 4)], tb_y=[("b", 4)], tb_k=[("k", 4)])),
        ("abc-adc-bd",
         {"a": 6, "b": 5, "c": 4, "d": 7},
         dict(tb_x=[("a", 4)], tb_y=[("b", 4)], tb_k=[("d", 3)])),
    )

    @pytest.fixture(scope="class", params=range(len(SLICE)))
    def case_results(self, request):
        expr, sizes, spec = self.SLICE[request.param]
        c = parse(expr, sizes)
        p = KernelPlan(c, config_from_spec(c, **spec))
        a, b = integer_operands(c, seed=request.param)
        want = reference_contract(c, a, b)
        got = {
            name: get_target(name).compile_and_run(p, a, b)
            for name in runnable_targets()
        }
        return want, got

    def test_bit_exact_vs_einsum(self, case_results):
        want, got = case_results
        for name, out in got.items():
            assert out.tobytes() == want.tobytes(), \
                f"{name} diverged from numpy.einsum"

    def test_targets_agree_pairwise(self, case_results):
        _, got = case_results
        for x, y in itertools.combinations(sorted(got), 2):
            assert got[x].tobytes() == got[y].tobytes(), \
                f"{x} and {y} disagree"


class TestDeprecatedShims:
    """Legacy entry points still work, warn, and emit byte-identical
    source to the registry path."""

    def test_generate_cuda_kernel(self, plan):
        from repro.core.codegen.cuda import generate_cuda_kernel

        with pytest.warns(DeprecationWarning, match="generate_cuda_kernel"):
            old = generate_cuda_kernel(plan)
        assert old == get_target("cuda").emit_kernel(plan)

    def test_generate_cuda_driver(self, plan):
        from repro.core.codegen.driver import generate_cuda_driver

        with pytest.warns(DeprecationWarning, match="generate_cuda_driver"):
            old = generate_cuda_driver(plan)
        assert old == get_target("cuda").emit_driver(plan)

    def test_generate_opencl_kernel(self, plan):
        from repro.core.codegen.opencl import generate_opencl_kernel

        with pytest.warns(DeprecationWarning,
                          match="generate_opencl_kernel"):
            old = generate_opencl_kernel(plan)
        assert old == get_target("opencl").emit_kernel(plan)

    def test_generate_c_emulation(self, plan):
        from repro.core.codegen.cemu import generate_c_emulation

        with pytest.warns(DeprecationWarning, match="generate_c_emulation"):
            old = generate_c_emulation(plan)
        assert old == get_target("cemu").emit_kernel(plan)

    def test_package_getattr_forwards_lazily(self, plan):
        import repro.core.codegen as codegen

        fn = codegen.generate_cuda_kernel
        with pytest.warns(DeprecationWarning):
            assert fn(plan) == get_target("cuda").emit_kernel(plan)
        with pytest.raises(AttributeError):
            codegen.generate_fortran_kernel

    def test_kernel_shims(self, cogent_v100, eq1_repr):
        kernel = cogent_v100.generate(eq1_repr)
        with pytest.warns(DeprecationWarning, match="cuda_source"):
            assert kernel.cuda_source == kernel.source("cuda")
        with pytest.warns(DeprecationWarning, match="cuda_driver_source"):
            assert kernel.cuda_driver_source() == \
                kernel.driver_source("cuda")
        with pytest.warns(DeprecationWarning, match="c_emulation_source"):
            assert kernel.c_emulation_source() == kernel.source("cemu")
        with pytest.warns(DeprecationWarning, match="opencl_source"):
            assert kernel.opencl_source() == kernel.source("opencl")


class TestKernelTargetPlumbing:
    def test_source_cached_per_target(self, cogent_v100, eq1_repr):
        kernel = cogent_v100.generate(eq1_repr)
        assert kernel.source("cuda") is kernel.source("cuda")
        assert kernel.source("cemu") is kernel.source("cemu")
        assert kernel.source("cuda") != kernel.source("cemu")

    def test_unknown_source_target_raises(self, cogent_v100, eq1_repr):
        kernel = cogent_v100.generate(eq1_repr)
        with pytest.raises(ValueError, match="registered targets"):
            kernel.source("fortran")

    def test_cogent_target_threaded_through(self, eq1_repr):
        kernel = Cogent(arch="V100", target="cemu").generate(eq1_repr)
        assert kernel.target == "cemu"
        assert kernel.source() == kernel.source("cemu")

    def test_cogent_rejects_unknown_target(self):
        with pytest.raises(ValueError, match="unknown codegen target"):
            Cogent(arch="V100", target="fortran")

    def test_search_signature_includes_target(self, eq1_repr):
        sig_cuda = Cogent(arch="V100").search_signature()
        sig_cemu = Cogent(arch="V100", target="cemu").search_signature()
        assert "target=cuda" in sig_cuda
        assert "target=cemu" in sig_cemu
        assert sig_cuda != sig_cemu

    def test_api_options_target(self):
        from repro.api import Options

        assert Options().target == "cuda"
        assert Options(target="openmp").target == "openmp"
        with pytest.raises(ValueError, match="target"):
            Options(target="fortran")


class TestObsCounters:
    def test_lookup_and_emit_counters(self, cogent_v100, eq1_repr):
        with obs.tracing() as sess:
            get_target("cuda")
            kernel = cogent_v100.generate(eq1_repr)
            kernel.source("cemu")
            kernel.source("cemu")  # cached: must not double count
        counters = sess.metrics.counters
        assert counters["codegen.target.cuda.lookups"] >= 1
        assert counters["codegen.target.cemu.emitted"] == 1

    @requires_cc
    def test_run_counter(self, plan, eq1_small):
        a, b = integer_operands(eq1_small, seed=9)
        with obs.tracing() as sess:
            get_target("cemu").compile_and_run(plan, a, b)
        assert sess.metrics.counter("codegen.target.cemu.runs") == 1


@requires_cc
class TestValidateOpenmpCheck:
    def test_validate_kernel_openmp(self, cogent_v100, eq1_small):
        from repro.core.validate import validate_kernel

        kernel = cogent_v100.generate(eq1_small)
        report = validate_kernel(kernel, checks=("plan", "openmp"))
        assert report.passed, report.summary()
