"""Smoke tests: the shipped examples must run end-to-end and pass their
own internal checks (each prints PASS/validates internally)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

# (script, argv, marker expected in stdout)
CASES = [
    ("quickstart.py", [], "PASS"),
    ("compile_and_validate.py", [], "matched numpy.einsum"),
    ("batched_ml.py", [], "PASS"),
    ("tensor_network.py", [], "PASS"),
    ("ccsd_iterations.py", ["3", "4"], "PASS"),
    ("autotune_vs_model.py", ["8", "2"], "model-driven"),
    ("triples_energy.py", ["3", "3"], "PASS"),
]


@pytest.mark.parametrize("script,argv,marker", CASES,
                         ids=[c[0] for c in CASES])
def test_example_runs(script, argv, marker):
    path = EXAMPLES / script
    assert path.exists(), f"missing example {script}"
    proc = subprocess.run(
        [sys.executable, str(path), *argv],
        capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert marker in proc.stdout
    assert "FAIL" not in proc.stdout


def test_all_examples_have_docstrings():
    for script in EXAMPLES.glob("*.py"):
        text = script.read_text()
        assert text.lstrip().startswith(
            ("#!/usr/bin/env python3", '"""')
        ), script.name
        assert '"""' in text, f"{script.name} lacks a docstring"


def test_examples_inventory():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    # The README promises at least a quickstart plus domain scenarios.
    assert "quickstart.py" in names
    assert len(names) >= 3
