"""Tests for the dimension-splitting extension (repro.core.splitting)."""

import numpy as np
import pytest

from repro.core.ir import ContractionError
from repro.core.mapping import config_from_spec
from repro.core.parser import parse
from repro.core.plan import KernelPlan
from repro.core.splitting import (
    SplitSpec,
    adapt_operands,
    candidate_splits,
    merge_output,
    restore_output,
    split_index,
    split_operand,
)
from repro.gpu.executor import (
    execute_plan,
    random_operands,
    reference_contract,
)


@pytest.fixture
def ttm():
    # Single external per side: the motivating case for splitting.
    return parse("abc-adc-bd", {"a": 16, "b": 24, "c": 8, "d": 12})


class TestSplitIndex:
    def test_replaces_index_in_all_tensors(self, ttm):
        split, spec = split_index(ttm, "b", 4)
        assert spec.low_name == "b0" and spec.high_name == "b1"
        assert "b" not in split.c.indices
        assert split.c.indices == ("a", "b0", "b1", "c")
        assert split.b.indices == ("b0", "b1", "d")

    def test_extents(self, ttm):
        split, _ = split_index(ttm, "b", 4)
        assert split.extent("b0") == 4
        assert split.extent("b1") == 6

    def test_strides_preserved(self, ttm):
        """Split tensors address the same memory as the originals."""
        split, _ = split_index(ttm, "b", 4)
        orig = ttm.strides_of(ttm.b)          # B[b, d]
        new = split.strides_of(split.b)       # B[b0, b1, d]
        assert new[0] == orig[0]              # b0 stride = b stride
        assert new[1] == orig[0] * 4          # b1 stride = b stride * f
        assert new[2] == orig[1]              # d unchanged

    def test_flops_preserved(self, ttm):
        split, _ = split_index(ttm, "b", 4)
        assert split.flops == ttm.flops

    def test_internal_index_splittable(self, ttm):
        split, spec = split_index(ttm, "d", 4)
        assert split.internal_indices == ("d0", "d1")

    def test_non_divisible_rejected(self, ttm):
        with pytest.raises(ContractionError):
            split_index(ttm, "b", 5)

    def test_full_extent_rejected(self, ttm):
        with pytest.raises(ContractionError):
            split_index(ttm, "b", 24)

    def test_factor_one_rejected(self, ttm):
        with pytest.raises(ContractionError):
            split_index(ttm, "b", 1)

    def test_name_collision_avoided(self):
        c = parse("ab-ak-kb",
                  {"a": 8, "b": 8, "k": 8})
        # Rename to create a clash with the default split names.
        c2 = parse(
            "C[a0,b] = A[a0,k] * B[k,b]",
            {"a0": 8, "b": 8, "k": 8},
        )
        split, spec = split_index(c2, "b", 4)
        assert spec.low_name not in ("a0",)
        assert len({*split.all_indices}) == len(split.all_indices)

    def test_str(self, ttm):
        _, spec = split_index(ttm, "b", 4)
        assert "b(24)" in str(spec)


class TestCandidates:
    def test_single_external_side_generates_candidates(self, ttm):
        cands = candidate_splits(ttm)
        assert cands
        assert all(spec.index == "b" for _, spec in cands)

    def test_two_external_sides_generate_none(self, eq1_repr):
        assert candidate_splits(eq1_repr) == []

    def test_factor_must_divide(self, ttm):
        cands = candidate_splits(ttm, factors=(5, 7))
        assert cands == []

    def test_max_candidates_respected(self, ttm):
        cands = candidate_splits(ttm, factors=(2, 4, 8), max_candidates=2)
        assert len(cands) <= 2


class TestOperandReshaping:
    def test_split_operand_semantics(self):
        arr = np.arange(12.0)
        out = split_operand(arr, 0, 4)
        assert out.shape == (4, 3)
        # Element i -> (i % 4, i // 4).
        for i in range(12):
            assert out[i % 4, i // 4] == arr[i]

    def test_merge_is_inverse(self):
        arr = np.arange(24.0).reshape(6, 4)
        split = split_operand(arr, 0, 3)
        merged = merge_output(split, 0)
        assert np.array_equal(merged, arr)

    def test_split_operand_non_divisible_rejected(self):
        with pytest.raises(ValueError):
            split_operand(np.arange(10.0), 0, 4)

    def test_adapt_and_restore_roundtrip(self, ttm):
        split, spec = split_index(ttm, "b", 4)
        a, b = random_operands(ttm)
        a2, b2 = adapt_operands(ttm, [spec], a, b)
        assert a2.shape == split.extents_of(split.a)
        assert b2.shape == split.extents_of(split.b)

    def test_split_execution_matches_original(self, ttm):
        """Executing a plan on the split contraction must equal the
        original contraction's einsum after merging the output."""
        split, spec = split_index(ttm, "b", 4)
        cfg = config_from_spec(
            split,
            tb_x=[("a", 8)],
            tb_y=[("b0", 4)],
            reg_y=[("b1", 3)],
            tb_k=[("d", 4)],
        )
        plan = KernelPlan(split, cfg)
        a, b = random_operands(ttm)
        a2, b2 = adapt_operands(ttm, [spec], a, b)
        got_split = execute_plan(plan, a2, b2)
        got = restore_output(split, [spec], got_split)
        want = reference_contract(ttm, a, b)
        assert np.allclose(got, want)


class TestGeneratorIntegration:
    def test_ttm_gets_split(self, ttm):
        from repro import Cogent

        big = parse("abc-adc-bd",
                    {"a": 256, "b": 256, "c": 256, "d": 256})
        gen = Cogent(arch="V100")
        kernel = gen.generate(big)
        # Splitting must at least be considered; for this shape the
        # split variant wins (both sides get register tiles).
        assert kernel.split_specs
        assert kernel.original_contraction is big

    def test_split_disabled(self):
        from repro import Cogent

        big = parse("abc-adc-bd",
                    {"a": 256, "b": 256, "c": 256, "d": 256})
        gen = Cogent(arch="V100", allow_split=False)
        kernel = gen.generate(big)
        assert kernel.split_specs == ()

    def test_no_split_for_rich_contractions(self, eq1_repr):
        from repro import Cogent

        kernel = Cogent(arch="V100").generate(eq1_repr)
        assert kernel.split_specs == ()
