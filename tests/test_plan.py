"""Tests for resolved kernel plans (repro.core.plan)."""

import pytest

from repro.core.mapping import Dim, config_from_spec
from repro.core.parser import parse
from repro.core.plan import Axis, KernelPlan, ceil_div, decompose


@pytest.fixture
def eq1():
    return parse(
        "abcd-aebf-dfce",
        {"a": 16, "b": 8, "c": 12, "d": 10, "e": 6, "f": 4},
    )


@pytest.fixture
def plan(eq1):
    cfg = config_from_spec(
        eq1,
        tb_x=[("a", 8)],
        tb_y=[("c", 4)],
        reg_x=[("b", 4)],
        reg_y=[("d", 2)],
        tb_k=[("e", 3), ("f", 2)],
    )
    return KernelPlan(eq1, cfg)


class TestHelpers:
    def test_ceil_div(self):
        assert ceil_div(10, 4) == 3
        assert ceil_div(8, 4) == 2

    def test_decompose_fastest_first(self):
        assert decompose(7, [4, 2]) == (3, 1)

    def test_decompose_roundtrip(self):
        sizes = [3, 4, 5]
        for flat in range(60):
            coords = decompose(flat, sizes)
            back = coords[0] + 3 * (coords[1] + 4 * coords[2])
            assert back == flat

    def test_axis_num_tiles(self):
        assert Axis("a", 10, 4).num_tiles == 3


class TestGeometry:
    def test_dtype_validation(self, eq1):
        cfg = config_from_spec(eq1, tb_x=[("a", 4)])
        with pytest.raises(ValueError):
            KernelPlan(eq1, cfg, dtype_bytes=2)

    def test_block_axes_order(self, plan):
        # TB_X, REG_X, TB_Y, REG_Y, then GRID.
        assert [a.index for a in plan.block_axes] == ["a", "b", "c", "d"]

    def test_step_axes_order(self, plan):
        assert [a.index for a in plan.step_axes] == ["e", "f"]

    def test_num_blocks(self, plan):
        # a: 16/8=2, b: 8/4=2, c: 12/4=3, d: 10/2=5.
        assert plan.num_blocks == 2 * 2 * 3 * 5

    def test_num_steps(self, plan):
        # e: ceil(6/3)=2, f: ceil(4/2)=2.
        assert plan.num_steps == 4

    def test_block_offsets_cover_all_tiles(self, plan):
        seen = set()
        for blk in range(plan.num_blocks):
            offs = plan.block_offsets(blk)
            seen.add(tuple(sorted(offs.items())))
        assert len(seen) == plan.num_blocks

    def test_block_offsets_are_tile_multiples(self, plan):
        offs = plan.block_offsets(plan.num_blocks - 1)
        assert offs["a"] % 8 == 0
        assert offs["d"] % 2 == 0

    def test_step_offsets(self, plan):
        assert plan.step_offsets(0) == {"e": 0, "f": 0}
        assert plan.step_offsets(1) == {"e": 3, "f": 0}
        assert plan.step_offsets(2) == {"e": 0, "f": 2}

    def test_thread_geometry(self, plan):
        assert plan.tb_x == 8
        assert plan.tb_y == 4
        assert plan.reg_x == 4
        assert plan.reg_y == 2
        assert plan.threads_per_block == 32

    def test_tb_k_tile(self, plan):
        assert plan.tb_k_tile == 6

    def test_tensor_tile_axes_in_storage_order(self, plan, eq1):
        axes = plan.tensor_tile_axes(eq1.a)
        assert [a.index for a in axes] == ["a", "e", "b", "f"]
        assert [a.tile for a in axes] == [8, 3, 4, 2]

    def test_tile_elements(self, plan, eq1):
        assert plan.tile_elements(eq1.a) == 8 * 3 * 4 * 2
        assert plan.tile_elements(eq1.b) == 2 * 2 * 4 * 3

    def test_smem_sizes(self, plan):
        assert plan.smem_x_elements == (8 * 4) * 6
        assert plan.smem_y_elements == (4 * 2) * 6
        assert plan.smem_bytes == (192 + 48) * 8

    def test_smem_ext_order(self, plan):
        assert plan.smem_ext_order("x") == ("a", "b")
        assert plan.smem_ext_order("y") == ("c", "d")

    def test_smem_ext_order_bad_side(self, plan):
        with pytest.raises(ValueError):
            plan.smem_ext_order("z")

    def test_input_side(self, plan, eq1):
        assert plan.input_side(eq1.a) == "x"
        assert plan.input_side(eq1.b) == "y"

    def test_loads_per_thread(self, plan, eq1):
        expected = ceil_div(plan.tile_elements(eq1.a), 32)
        assert plan.loads_per_thread(eq1.a) == expected

    def test_summary_mentions_key_facts(self, plan):
        text = plan.summary()
        assert "blocks" in text
        assert "smem" in text


class TestDegenerate:
    def test_no_internal_indices(self):
        c = parse("ab-a-b", {"a": 8, "b": 8})
        cfg = config_from_spec(c, tb_x=[("a", 4)], tb_y=[("b", 4)])
        plan = KernelPlan(c, cfg)
        assert plan.num_steps == 1
        assert plan.tb_k_tile == 1
        assert plan.step_axes == ()

    def test_grid_only_config(self):
        c = parse("ab-ak-kb", {"a": 4, "b": 4, "k": 4})
        cfg = config_from_spec(c)  # everything defaulted
        plan = KernelPlan(c, cfg)
        assert plan.threads_per_block == 1
        assert plan.num_blocks == 16
