"""Tests for the blessed high-level API (repro.api)."""

import dataclasses
import warnings

import pytest

from repro import api
from repro.core.enumeration import Enumerator
from repro.core.generator import Cogent
from repro.evaluation.runner import SuiteRunner
from repro.gpu.arch import VOLTA_V100
from repro.tccg import get

# Three small TCCG entries: fast enough to generate repeatedly.
TCCG_NAMES = ("ttm_mode1", "ttm_mode2", "mo_stage1")


class TestOptions:
    def test_defaults(self):
        opts = api.Options()
        assert opts.workers == 1
        assert opts.top_k == 64
        assert opts.cache_dir is None
        assert opts.arch == "V100"
        assert opts.dtype == "double"
        assert opts.trace is False

    def test_frozen(self):
        opts = api.Options()
        with pytest.raises(dataclasses.FrozenInstanceError):
            opts.workers = 4

    def test_round_trip(self):
        opts = api.Options(workers=4, top_k=8, cache_dir="/tmp/c",
                           arch="P100", dtype="single", trace=True)
        clone = api.Options(**dataclasses.asdict(opts))
        assert clone == opts

    def test_dtype_bytes(self):
        assert api.Options().dtype_bytes == 8
        assert api.Options(dtype="single").dtype_bytes == 4

    def test_evolve(self):
        opts = api.Options()
        changed = opts.evolve(workers=3)
        assert changed.workers == 3
        assert opts.workers == 1
        assert changed.top_k == opts.top_k

    @pytest.mark.parametrize("bad", [
        {"workers": 0},
        {"top_k": 0},
        {"dtype": "half"},
        {"arch": "K80"},
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            api.Options(**bad)


class TestDeprecationShims:
    def test_cogent_workers_warns(self):
        with pytest.warns(DeprecationWarning, match="Cogent"):
            Cogent(workers=2)

    def test_cogent_default_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            Cogent()

    def test_enumerator_search_workers_warns(self):
        contraction = get("ttm_mode1").contraction()
        enumerator = Enumerator(contraction, VOLTA_V100)
        with pytest.warns(DeprecationWarning, match="search"):
            enumerator.search(keep=4, workers=1)

    def test_suite_runner_cache_dir_warns(self, tmp_path):
        with pytest.warns(DeprecationWarning, match="cache_dir"):
            SuiteRunner(cache_dir=tmp_path / "eval")

    def test_suite_runner_compare_workers_warns(self):
        runner = SuiteRunner()
        with pytest.warns(DeprecationWarning, match="compare"):
            runner.compare([get("ttm_mode1")], ("talsh",), workers=1)

    def test_internal_paths_do_not_warn(self, tmp_path):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            runner = SuiteRunner(_cache_dir=tmp_path / "eval")
            runner.compare([get("ttm_mode1")], ("talsh",), _workers=1)
            api.compile("ab-ak-kb", 16, options=api.Options(top_k=2))

    def test_old_api_identical_to_new(self):
        """The shims change nothing but the spelling (3 TCCG entries)."""
        opts = api.Options(workers=2, top_k=4)
        for name in TCCG_NAMES:
            contraction = get(name).contraction()
            with pytest.warns(DeprecationWarning):
                old = Cogent(top_k=4, workers=2).generate(contraction)
            new = api.compile(contraction, options=opts)
            assert old.config.describe() == new.config.describe()
            assert old.candidates[0].simulated.gflops == pytest.approx(
                new.candidates[0].simulated.gflops
            )


class TestFacade:
    def test_compile_expression(self):
        kernel = api.compile("ab-ak-kb", 32,
                             options=api.Options(top_k=2))
        assert kernel.config is not None
        assert "__global__" in kernel.source("cuda")

    def test_compile_cache_dir_persists(self, tmp_path):
        opts = api.Options(top_k=2, cache_dir=tmp_path / "kernels")
        api.compile("ab-ak-kb", 32, options=opts)
        assert any((tmp_path / "kernels").iterdir())

    def test_rank(self):
        ranked = api.rank("ab-ak-kb", 64)
        assert len(ranked) > 0
        config, cost = ranked[0]
        assert cost > 0
        assert min(cost for _, cost in ranked) == cost

    def test_evaluate(self, tmp_path):
        rows = api.evaluate(
            [get("ttm_mode1")], ("talsh", "tc_untuned"),
            options=api.Options(cache_dir=tmp_path / "eval"),
        )
        assert len(rows) == 1
        assert rows[0].gflops("talsh") > 0
        # Second run replays from the cache.
        rows2 = api.evaluate(
            [get("ttm_mode1")], ("talsh", "tc_untuned"),
            options=api.Options(cache_dir=tmp_path / "eval"),
        )
        assert rows2[0].results["talsh"].cached
        assert rows2[0].gflops("talsh") == rows[0].gflops("talsh")

    def test_tune(self):
        result = api.tune("ab-ak-kb", 64, population=4, generations=2)
        assert result.evaluations == 8
        assert result.best_gflops > 0

    def test_trace_option_exports_payload(self):
        from repro import obs

        opts = api.Options(top_k=2, trace=True)
        api.compile("ab-ak-kb", 16, options=opts)
        payload = api.last_trace()
        assert payload is not None
        assert obs.validate_payload(payload) == []
        assert payload["meta"]["command"] == "compile"

    def test_root_exports(self):
        import repro

        assert repro.compile is api.compile
        assert repro.rank is api.rank
        assert repro.evaluate is api.evaluate
        assert repro.tune is api.tune
        assert repro.Options is api.Options
