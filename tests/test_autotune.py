"""Tests for the autotuning strategies (repro.autotune)."""

import numpy as np
import pytest

from repro import parse
from repro.autotune import (
    ALL_STRATEGIES,
    ConfigSpace,
    Evaluator,
    GeneticSearch,
    HillClimb,
    ModelDriven,
    RandomSearch,
    SimulatedAnnealing,
)
from repro.core.mapping import Dim


@pytest.fixture
def contraction():
    return parse("abcd-aebf-dfce", 32)


@pytest.fixture
def evaluator(contraction, v100):
    return Evaluator(contraction, v100)


class TestConfigSpace:
    def test_random_configs_are_valid(self, contraction):
        space = ConfigSpace(contraction)
        rng = np.random.default_rng(0)
        for _ in range(30):
            space.random_config(rng).validate_for(contraction)

    def test_grid_tiles_are_one(self, contraction):
        space = ConfigSpace(contraction)
        rng = np.random.default_rng(1)
        for _ in range(30):
            config = space.random_config(rng)
            for m in config.by_dim(Dim.GRID):
                assert m.tile == 1

    def test_mutation_preserves_validity(self, contraction):
        space = ConfigSpace(contraction)
        rng = np.random.default_rng(2)
        config = space.random_config(rng)
        for _ in range(20):
            config = space.mutate(config, rng)
            config.validate_for(contraction)

    def test_crossover_preserves_validity(self, contraction):
        space = ConfigSpace(contraction)
        rng = np.random.default_rng(3)
        a = space.random_config(rng)
        b = space.random_config(rng)
        child = space.crossover(a, b, rng)
        child.validate_for(contraction)

    def test_neighbor_changes_at_most_one_index(self, contraction):
        space = ConfigSpace(contraction)
        rng = np.random.default_rng(4)
        config = space.random_config(rng)
        neighbor = space.neighbor(config, rng)
        changed = [
            m for m, n in zip(config.mappings, neighbor.mappings)
            if (m.dim, m.tile) != (n.dim, n.tile)
        ]
        assert len(changed) <= 1


class TestEvaluator:
    def test_counts_evaluations(self, evaluator, contraction):
        space = ConfigSpace(contraction)
        rng = np.random.default_rng(0)
        for _ in range(5):
            evaluator.fitness(space.random_config(rng))
        assert evaluator.evaluations == 5

    def test_cache_returns_same_value(self, evaluator, contraction):
        space = ConfigSpace(contraction)
        rng = np.random.default_rng(1)
        config = space.random_config(rng)
        assert evaluator.fitness(config) == evaluator.fitness(config)

    def test_infeasible_scores_zero(self, evaluator, contraction):
        from repro.core.mapping import config_from_spec

        config = config_from_spec(
            contraction,
            tb_x=[("a", 32), ("b", 32)], tb_y=[("d", 32)],
        )
        assert evaluator.fitness(config) == 0.0


class TestStrategies:
    @pytest.mark.parametrize("cls", ALL_STRATEGIES,
                             ids=lambda c: c.name)
    def test_respects_budget(self, cls, contraction, v100):
        evaluator = Evaluator(contraction, v100)
        trace = cls(budget=40, seed=0).tune(evaluator)
        assert trace.evaluations == 40

    @pytest.mark.parametrize("cls", ALL_STRATEGIES,
                             ids=lambda c: c.name)
    def test_curve_monotone(self, cls, contraction, v100):
        trace = cls(budget=40, seed=0).tune(Evaluator(contraction, v100))
        assert all(b >= a for a, b in zip(trace.curve, trace.curve[1:]))

    @pytest.mark.parametrize("cls", ALL_STRATEGIES,
                             ids=lambda c: c.name)
    def test_deterministic(self, cls, contraction, v100):
        t1 = cls(budget=30, seed=9).tune(Evaluator(contraction, v100))
        t2 = cls(budget=30, seed=9).tune(Evaluator(contraction, v100))
        assert t1.curve == t2.curve

    def test_finds_something_feasible(self, contraction, v100):
        trace = RandomSearch(budget=80, seed=2).tune(
            Evaluator(contraction, v100)
        )
        assert trace.best_gflops > 0
        assert trace.best_config is not None

    def test_model_driven_beats_search_at_equal_budget(
        self, contraction, v100
    ):
        """The paper's thesis in one assertion."""
        budget = 64
        model = ModelDriven().tune(Evaluator(contraction, v100))
        for cls in ALL_STRATEGIES:
            search = cls(budget=budget, seed=0).tune(
                Evaluator(contraction, v100)
            )
            assert model.best_gflops > search.best_gflops

    def test_evaluations_to_reach(self, contraction, v100):
        trace = SimulatedAnnealing(budget=60, seed=1).tune(
            Evaluator(contraction, v100)
        )
        hit = trace.evaluations_to_reach(trace.best_gflops)
        assert hit is not None
        assert trace.curve[hit - 1] >= trace.best_gflops
        assert trace.evaluations_to_reach(trace.best_gflops * 10) is None
