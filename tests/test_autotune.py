"""Tests for the autotuning strategies (repro.autotune)."""

import numpy as np
import pytest

from repro import parse
from repro.autotune import (
    ALL_STRATEGIES,
    ConfigSpace,
    Evaluator,
    GeneticSearch,
    HillClimb,
    ModelDriven,
    ModelGuidedStrategy,
    RandomSearch,
    ReplayEvaluator,
    SimulatedAnnealing,
)
from repro.core.mapping import Dim


@pytest.fixture
def contraction():
    return parse("abcd-aebf-dfce", 32)


@pytest.fixture
def evaluator(contraction, v100):
    return Evaluator(contraction, v100)


class TestConfigSpace:
    def test_random_configs_are_valid(self, contraction):
        space = ConfigSpace(contraction)
        rng = np.random.default_rng(0)
        for _ in range(30):
            space.random_config(rng).validate_for(contraction)

    def test_grid_tiles_are_one(self, contraction):
        space = ConfigSpace(contraction)
        rng = np.random.default_rng(1)
        for _ in range(30):
            config = space.random_config(rng)
            for m in config.by_dim(Dim.GRID):
                assert m.tile == 1

    def test_mutation_preserves_validity(self, contraction):
        space = ConfigSpace(contraction)
        rng = np.random.default_rng(2)
        config = space.random_config(rng)
        for _ in range(20):
            config = space.mutate(config, rng)
            config.validate_for(contraction)

    def test_crossover_preserves_validity(self, contraction):
        space = ConfigSpace(contraction)
        rng = np.random.default_rng(3)
        a = space.random_config(rng)
        b = space.random_config(rng)
        child = space.crossover(a, b, rng)
        child.validate_for(contraction)

    def test_neighbor_changes_at_most_one_index(self, contraction):
        space = ConfigSpace(contraction)
        rng = np.random.default_rng(4)
        config = space.random_config(rng)
        neighbor = space.neighbor(config, rng)
        changed = [
            m for m, n in zip(config.mappings, neighbor.mappings)
            if (m.dim, m.tile) != (n.dim, n.tile)
        ]
        assert len(changed) <= 1


class TestEvaluator:
    def test_counts_evaluations(self, evaluator, contraction):
        space = ConfigSpace(contraction)
        rng = np.random.default_rng(0)
        for _ in range(5):
            evaluator.fitness(space.random_config(rng))
        assert evaluator.evaluations == 5

    def test_cache_returns_same_value(self, evaluator, contraction):
        space = ConfigSpace(contraction)
        rng = np.random.default_rng(1)
        config = space.random_config(rng)
        assert evaluator.fitness(config) == evaluator.fitness(config)

    def test_infeasible_scores_zero(self, evaluator, contraction):
        from repro.core.mapping import config_from_spec

        config = config_from_spec(
            contraction,
            tb_x=[("a", 32), ("b", 32)], tb_y=[("d", 32)],
        )
        assert evaluator.fitness(config) == 0.0


class TestStrategies:
    @pytest.mark.parametrize("cls", ALL_STRATEGIES,
                             ids=lambda c: c.name)
    def test_respects_budget(self, cls, contraction, v100):
        evaluator = Evaluator(contraction, v100)
        trace = cls(budget=40, seed=0).tune(evaluator)
        assert trace.evaluations == 40

    @pytest.mark.parametrize("cls", ALL_STRATEGIES,
                             ids=lambda c: c.name)
    def test_curve_monotone(self, cls, contraction, v100):
        trace = cls(budget=40, seed=0).tune(Evaluator(contraction, v100))
        assert all(b >= a for a, b in zip(trace.curve, trace.curve[1:]))

    @pytest.mark.parametrize("cls", ALL_STRATEGIES,
                             ids=lambda c: c.name)
    def test_deterministic(self, cls, contraction, v100):
        t1 = cls(budget=30, seed=9).tune(Evaluator(contraction, v100))
        t2 = cls(budget=30, seed=9).tune(Evaluator(contraction, v100))
        assert t1.curve == t2.curve

    def test_finds_something_feasible(self, contraction, v100):
        trace = RandomSearch(budget=80, seed=2).tune(
            Evaluator(contraction, v100)
        )
        assert trace.best_gflops > 0
        assert trace.best_config is not None

    def test_model_driven_beats_search_at_equal_budget(
        self, contraction, v100
    ):
        """The paper's thesis in one assertion."""
        budget = 64
        model = ModelDriven().tune(Evaluator(contraction, v100))
        for cls in ALL_STRATEGIES:
            search = cls(budget=budget, seed=0).tune(
                Evaluator(contraction, v100)
            )
            assert model.best_gflops > search.best_gflops

    def test_evaluations_to_reach(self, contraction, v100):
        trace = SimulatedAnnealing(budget=60, seed=1).tune(
            Evaluator(contraction, v100)
        )
        hit = trace.evaluations_to_reach(trace.best_gflops)
        assert hit is not None
        assert trace.curve[hit - 1] >= trace.best_gflops
        assert trace.evaluations_to_reach(trace.best_gflops * 10) is None


class TestReplayEvaluator:
    def test_positive_fitness_on_ranked_config(self, contraction, v100):
        from repro import Cogent

        config, _cost = Cogent(
            arch="V100", allow_split=False
        ).rank_configs(contraction)[0]
        evaluator = ReplayEvaluator(contraction, v100)
        assert evaluator.fitness(config) > 0

    def test_infeasible_scores_zero(self, contraction, v100):
        from repro.core.mapping import config_from_spec

        config = config_from_spec(
            contraction,
            tb_x=[("a", 32), ("b", 32)], tb_y=[("d", 32)],
        )
        assert ReplayEvaluator(contraction, v100).fitness(config) == 0.0


class TestModelGuided:
    def test_respects_budget(self, contraction, v100):
        strategy = ModelGuidedStrategy(budget=8, shortlist=24)
        trace = strategy.tune(ReplayEvaluator(contraction, v100))
        assert trace.evaluations <= 8
        assert strategy.last_report.measurements == trace.evaluations
        assert strategy.last_report.shortlist <= 24

    def test_deterministic(self, contraction, v100):
        t1 = ModelGuidedStrategy(budget=8, shortlist=24).tune(
            ReplayEvaluator(contraction, v100)
        )
        t2 = ModelGuidedStrategy(budget=8, shortlist=24).tune(
            ReplayEvaluator(contraction, v100)
        )
        assert t1.curve == t2.curve
        assert t1.best_config.describe() == t2.best_config.describe()

    def test_stops_when_predicted_best_stabilizes(self, contraction, v100):
        strategy = ModelGuidedStrategy(budget=64, shortlist=16)
        trace = strategy.tune(ReplayEvaluator(contraction, v100))
        report = strategy.last_report
        # With a generous budget the loop must stop early, either by
        # stabilising or by exhausting the shortlist.
        assert report.stabilized or trace.evaluations == report.shortlist
        assert trace.evaluations < 64

    def test_within_five_percent_of_exhaustive_shortlist(
        self, contraction, v100
    ):
        """The Fig. 8 claim on one contraction, pinned as a test."""
        shortlist = 24
        strategy = ModelGuidedStrategy(budget=8, shortlist=shortlist)
        trace = strategy.tune(ReplayEvaluator(contraction, v100))

        from repro import Cogent

        generator = Cogent(arch="V100", allow_split=False)
        exhaustive = ReplayEvaluator(contraction, v100)
        best = max(
            exhaustive.fitness(config)
            for config, _cost in generator.rank_configs(
                contraction
            )[:shortlist]
        )
        assert trace.best_gflops >= 0.95 * best

    def test_guided_uses_persisted_calibration(
        self, contraction, v100, tmp_path
    ):
        from repro import obs
        from repro.autotune import ensure_calibration

        ensure_calibration(
            store=tmp_path, benchmarks=("ttm_mode2",), per_contraction=4
        )
        strategy = ModelGuidedStrategy(budget=4, store=tmp_path)
        with obs.tracing() as session:
            strategy.tune(ReplayEvaluator(contraction, v100))
        assert strategy.last_report.calibrated
        assert session.metrics.counter("autotune.calibration.fits") == 0


class TestApiGuidedTune:
    def test_guided_tune_smoke(self, contraction):
        from repro import api

        result = api.tune(
            contraction, guided=True, budget=6, shortlist=16
        )
        assert result.evaluations <= 6
        assert result.best_gflops > 0
        assert not result.calibration_fitted
        payload = result.as_dict()
        assert payload["strategy"] == "model-guided"
        assert payload["report"]["measurements"] == result.evaluations

    def test_options_validate_calibration(self):
        from repro import api

        assert api.Options(calibration="auto").calibration == "auto"
        with pytest.raises(ValueError, match="calibration"):
            api.Options(calibration="always")
