"""Structural tests for the CUDA emitter (repro.core.codegen.cuda)."""

import re

import pytest

from repro.core.codegen import get_target
from repro.core.codegen.cuda import (
    generate_launch_snippet,
    kernel_param_list,
    scalar_type,
)


def generate_cuda_kernel(plan, kernel_name="tc_kernel"):
    return get_target("cuda").emit_kernel(plan, kernel_name)


def generate_cuda_driver(plan, kernel_name="tc_kernel"):
    return get_target("cuda").emit_driver(plan, kernel_name)
from repro.core.mapping import config_from_spec
from repro.core.parser import parse
from repro.core.plan import KernelPlan


@pytest.fixture
def plan(eq1_repr):
    cfg = config_from_spec(
        eq1_repr,
        tb_x=[("a", 16)], tb_y=[("d", 8)],
        reg_x=[("b", 4)], reg_y=[("c", 4)],
        tb_k=[("e", 8), ("f", 2)],
    )
    return KernelPlan(eq1_repr, cfg)


@pytest.fixture
def source(plan):
    return generate_cuda_kernel(plan)


def balanced(text, open_ch="{", close_ch="}"):
    depth = 0
    for ch in text:
        if ch == open_ch:
            depth += 1
        elif ch == close_ch:
            depth -= 1
            if depth < 0:
                return False
    return depth == 0


class TestStructure:
    def test_braces_balanced(self, source):
        assert balanced(source)

    def test_parens_balanced(self, source):
        assert balanced(source, "(", ")")

    def test_extern_c_global(self, source):
        assert 'extern "C" __global__ void tc_kernel' in source

    def test_two_syncthreads_per_step(self, source):
        assert source.count("__syncthreads();") == 2

    def test_shared_declarations_match_plan(self, plan, source):
        assert f"__shared__ double s_a[{plan.smem_x_elements}];" in source
        assert f"__shared__ double s_b[{plan.smem_y_elements}];" in source

    def test_register_declarations_match_plan(self, plan, source):
        assert f"double r_c[{plan.reg_x * plan.reg_y}];" in source
        assert f"double r_a[{plan.reg_x}];" in source
        assert f"double r_b[{plan.reg_y}];" in source

    def test_extent_parameters_for_all_indices(self, plan, source):
        for index in plan.contraction.all_indices:
            assert f"int n_{index}" in source

    def test_strides_for_all_tensors(self, source):
        assert "st_C_a" in source
        assert "st_A_a" in source
        assert "st_B_d" in source

    def test_fvi_has_unit_stride(self, source):
        assert "const long st_A_a = 1;" in source
        assert "const long st_C_a = 1;" in source

    def test_bounds_checks_present(self, source):
        assert "g_a < n_a" in source

    def test_banner_mentions_contraction(self, plan, source):
        assert str(plan.contraction) in source

    def test_pragma_unroll_in_compute(self, source):
        assert "#pragma unroll" in source

    def test_load_loops_strided_by_thread_count(self, plan, source):
        # Each staged tensor's loop strides by threads * vector-width.
        for tensor in (plan.contraction.a, plan.contraction.b):
            width = plan.staging_vector_width(tensor)
            assert f"l_ += {plan.threads_per_block * width}" in source

    def test_vectorized_loads_when_legal(self, plan, source):
        # Extent 24, tile 16 on A's FVI: double2 staging applies.
        assert plan.staging_vector_width(plan.contraction.a) == 2
        assert "double2" in source

    def test_no_vectorization_for_odd_extents(self, eq1_small):
        cfg = config_from_spec(
            eq1_small, tb_x=[("a", 4)], tb_k=[("e", 2)]
        )
        plan = KernelPlan(eq1_small, cfg)  # extent(a) = 7, odd
        source = generate_cuda_kernel(plan)
        assert plan.staging_vector_width(eq1_small.a) == 1
        assert "double2" not in source

    def test_vectorization_can_be_disabled(self, plan):
        from repro.core.codegen.cuda import _load_loop

        lines = _load_loop(plan, plan.contraction.a, "s_a", "double",
                           vectorize=False)
        assert not any("double2" in line for line in lines)

    def test_no_double_semicolons(self, source):
        assert ";;" not in source


class TestScalarTypes:
    def test_double(self):
        assert scalar_type(8) == "double"

    def test_float(self):
        assert scalar_type(4) == "float"

    def test_float_kernel_uses_float(self, eq1_repr):
        cfg = config_from_spec(
            eq1_repr, tb_x=[("a", 16)], tb_y=[("d", 8)], tb_k=[("e", 8)]
        )
        source = generate_cuda_kernel(KernelPlan(eq1_repr, cfg, 4))
        assert "float s_a" in source.replace("__shared__ ", "")
        assert "double" not in source


class TestParams:
    def test_param_list_order(self, plan):
        params = kernel_param_list(plan, "double")
        assert params.startswith("double* __restrict__ g_C")
        assert params.index("g_C") < params.index("g_A") < params.index("g_B")

    def test_kernel_name_override(self, plan):
        source = generate_cuda_kernel(plan, kernel_name="my_kernel")
        assert "my_kernel" in source


class TestLaunchSnippet:
    def test_grid_product_over_block_axes(self, plan):
        snippet = generate_launch_snippet(plan)
        assert "num_blocks_" in snippet
        assert f"dim3 block_({plan.tb_x}, {plan.tb_y});" in snippet

    def test_launch_passes_all_extents(self, plan):
        snippet = generate_launch_snippet(plan)
        for index in plan.contraction.all_indices:
            assert f"n_{index}" in snippet


class TestDriver:
    def test_driver_compilable_shape(self, plan):
        driver = generate_cuda_driver(plan)
        assert balanced(driver)
        assert "int main(" in driver
        assert "cudaMalloc" in driver
        assert "cudaEventElapsedTime" in driver
        assert "tc_kernel<<<" in driver

    def test_driver_defaults_to_representative_extents(self, plan):
        driver = generate_cuda_driver(plan)
        assert ": 24;" in driver  # representative size baked as default


class TestDeterminism:
    def test_same_plan_same_source(self, plan):
        assert generate_cuda_kernel(plan) == generate_cuda_kernel(plan)

    def test_different_configs_differ(self, eq1_repr):
        cfg1 = config_from_spec(
            eq1_repr, tb_x=[("a", 16)], tb_y=[("d", 8)], tb_k=[("e", 8)]
        )
        cfg2 = config_from_spec(
            eq1_repr, tb_x=[("a", 8)], tb_y=[("d", 8)], tb_k=[("e", 8)]
        )
        s1 = generate_cuda_kernel(KernelPlan(eq1_repr, cfg1))
        s2 = generate_cuda_kernel(KernelPlan(eq1_repr, cfg2))
        assert s1 != s2
